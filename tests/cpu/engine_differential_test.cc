/**
 * @file
 * Differential suite for the event-driven core engine: every config in
 * the 200-entry core-invariants fuzz grid runs twice — once on the
 * event engine (wakeup lists + cycle skipping) and once on the
 * retained reference tick loop — and the two runs must be
 * byte-identical in all three observable artifacts:
 *  - the SimResult (every field, including the stall-cause and
 *    per-class breakdown arrays);
 *  - the rendered stats tree (cpu.core.*, mem.*, accel.*);
 *  - the full pipeline event stream, folded through an
 *    order-sensitive checksum over every EventSink callback;
 *  - the exact critical path (the cp.json rendering of the
 *    CriticalPathTracker report), whose per-cause cycle attribution
 *    must also sum to total cycles under both engines.
 *
 * The grid shares its generators with core_invariants_fuzz_test
 * (tests/cpu/fuzz_configs.hh), so any geometry that suite proves the
 * window invariants for, this suite proves engine-equivalent.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <string>

#include "cpu/core_config.hh"
#include "cpu/sim_result.hh"
#include "model/tca_mode.hh"
#include "obs/critical_path.hh"
#include "obs/event_sink.hh"
#include "util/random.hh"
#include "workloads/experiment.hh"
#include "workloads/synthetic.hh"

#include "fuzz_configs.hh"

namespace tca {
namespace {

/**
 * Folds every pipeline event — handler identity and all arguments —
 * into one order-sensitive FNV-1a stream hash. Two runs produce the
 * same digest iff they emitted the same events with the same arguments
 * in the same order. Per-handler counters make a mismatch attributable
 * to a callback kind without storing the (multi-megabyte) streams.
 */
class StreamDigestSink : public obs::EventSink
{
  public:
    uint64_t digest() const { return hash; }
    uint64_t events() const { return numEvents; }
    uint64_t cycles() const { return numCycles; }
    uint64_t stalls() const { return numStalls; }
    uint64_t commits() const { return numCommits; }

    void
    onRunBegin(const obs::RunContext &ctx) override
    {
        tag(1);
        str(ctx.coreName);
        u64(ctx.robSize);
        u64(ctx.dispatchWidth);
        u64(ctx.issueWidth);
        u64(ctx.commitWidth);
        u64(ctx.commitLatency);
        u64(ctx.memPorts);
        for (const std::string &name : ctx.stallCauseNames)
            str(name);
    }

    void
    onRunEnd(mem::Cycle cycles, uint64_t committed) override
    {
        tag(2);
        u64(cycles);
        u64(committed);
    }

    void
    onCycle(mem::Cycle now, uint32_t occupancy) override
    {
        tag(3);
        u64(now);
        u64(occupancy);
        ++numCycles;
    }

    void
    onDispatch(uint64_t seq, const trace::MicroOp &op,
               mem::Cycle now) override
    {
        tag(4);
        u64(seq);
        u64(static_cast<uint64_t>(op.cls));
        u64(op.addr);
        u64(op.dst);
        u64(op.size);
        u64(op.mispredicted ? 1 : 0);
        u64(op.accelInvocation);
        u64(op.accelPort);
        u64(now);
    }

    void
    onIssue(uint64_t seq, mem::Cycle now) override
    {
        tag(5);
        u64(seq);
        u64(now);
    }

    void
    onCommit(const obs::UopLifecycle &uop) override
    {
        tag(6);
        u64(uop.seq);
        u64(static_cast<uint64_t>(uop.cls));
        u64(uop.addr);
        u64(uop.accelPort);
        u64(uop.accelInvocation);
        u64(uop.mispredicted ? 1 : 0);
        u64(uop.dispatch);
        u64(uop.issue);
        u64(uop.complete);
        u64(uop.commit);
        ++numCommits;
    }

    void
    onDispatchStall(uint8_t cause, mem::Cycle now) override
    {
        tag(7);
        u64(cause);
        u64(now);
        ++numStalls;
    }

    void
    onRobAllocate(uint64_t seq, uint32_t occupancy) override
    {
        tag(8);
        u64(seq);
        u64(occupancy);
    }

    void
    onRobRetire(uint64_t seq, uint32_t occupancy) override
    {
        tag(9);
        u64(seq);
        u64(occupancy);
    }

    void
    onMemPortClaim(mem::Cycle requested, mem::Cycle granted) override
    {
        tag(10);
        u64(requested);
        u64(granted);
    }

    void
    onAccelInvocation(uint8_t port, uint32_t invocation,
                      const char *device, mem::Cycle start,
                      mem::Cycle complete, uint32_t compute_latency,
                      uint32_t num_requests) override
    {
        tag(11);
        u64(port);
        u64(invocation);
        str(device);
        u64(start);
        u64(complete);
        u64(compute_latency);
        u64(num_requests);
    }

    void
    onAccelDeviceEvent(const char *device, const char *event,
                       uint64_t value) override
    {
        tag(12);
        str(device);
        str(event);
        u64(value);
    }

  private:
    static constexpr uint64_t kFnvOffset = 1469598103934665603ull;
    static constexpr uint64_t kFnvPrime = 1099511628211ull;

    void
    byte(uint8_t b)
    {
        hash = (hash ^ b) * kFnvPrime;
    }

    void
    tag(uint8_t kind)
    {
        byte(kind);
        ++numEvents;
    }

    void
    u64(uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            byte(static_cast<uint8_t>(v >> (8 * i)));
    }

    void
    str(const std::string &s)
    {
        u64(s.size());
        for (char c : s)
            byte(static_cast<uint8_t>(c));
    }

    void
    str(const char *s)
    {
        str(std::string(s ? s : ""));
    }

    uint64_t hash = kFnvOffset;
    uint64_t numEvents = 0;
    uint64_t numCycles = 0;
    uint64_t numStalls = 0;
    uint64_t numCommits = 0;
};

/**
 * Drop cpu.engine.* leaves from a rendered stats tree: those counters
 * describe the run engine itself (skips, wakeups) and differ between
 * engines by design. The snapshot renders dotted paths as nested JSON,
 * so the filter matches the leaf key names — which only cpu.engine
 * uses. Everything else must match byte for byte.
 */
std::string
stripEngineLines(const std::string &tree)
{
    static const char *const engine_keys[] = {
        "\"skips\"", "\"skipped_cycles\"", "\"wakeups\"",
    };
    std::string out;
    size_t pos = 0;
    while (pos < tree.size()) {
        size_t end = tree.find('\n', pos);
        if (end == std::string::npos)
            end = tree.size();
        std::string line = tree.substr(pos, end - pos);
        bool engine_leaf = false;
        for (const char *key : engine_keys)
            if (line.find(key) != std::string::npos)
                engine_leaf = true;
        if (!engine_leaf) {
            out += line;
            out += '\n';
        }
        pos = end + 1;
    }
    return out;
}

/** Field-by-field SimResult comparison with readable failures. */
void
expectSameResult(const cpu::SimResult &event, const cpu::SimResult &ref,
                 const std::string &label)
{
    EXPECT_EQ(event.cycles, ref.cycles) << label;
    EXPECT_EQ(event.committedUops, ref.committedUops) << label;
    EXPECT_EQ(event.committedAcceleratable, ref.committedAcceleratable)
        << label;
    EXPECT_EQ(event.accelInvocations, ref.accelInvocations) << label;
    EXPECT_EQ(event.accelLatencyTotal, ref.accelLatencyTotal) << label;
    EXPECT_EQ(event.robOccupancySum, ref.robOccupancySum) << label;
    for (size_t c = 0; c < event.stallCycles.size(); ++c) {
        EXPECT_EQ(event.stallCycles[c], ref.stallCycles[c])
            << label << " stall cause "
            << cpu::stallCauseName(static_cast<cpu::StallCause>(c));
    }
    for (size_t c = 0; c < event.committedByClass.size(); ++c) {
        EXPECT_EQ(event.committedByClass[c], ref.committedByClass[c])
            << label << " op class " << c;
    }
}

/** Compare the two engines' full artifact sets for one run. */
void
expectSameRun(const cpu::SimResult &event_result,
              const StreamDigestSink &event_sink,
              const stats::StatsSnapshot &event_stats,
              const cpu::SimResult &ref_result,
              const StreamDigestSink &ref_sink,
              const stats::StatsSnapshot &ref_stats,
              const std::string &label)
{
    expectSameResult(event_result, ref_result, label);

    // Stream digest: every event, every argument, in order. The
    // per-kind counters narrow down which callback diverged.
    EXPECT_EQ(event_sink.events(), ref_sink.events()) << label;
    EXPECT_EQ(event_sink.cycles(), ref_sink.cycles()) << label;
    EXPECT_EQ(event_sink.stalls(), ref_sink.stalls()) << label;
    EXPECT_EQ(event_sink.commits(), ref_sink.commits()) << label;
    EXPECT_EQ(event_sink.digest(), ref_sink.digest()) << label;

    // Rendered stats tree (counters, gauges, histograms, formulas),
    // minus the engine's own introspection subtree.
    EXPECT_EQ(stripEngineLines(event_stats.str()),
              stripEngineLines(ref_stats.str()))
        << label;
}

/**
 * Critical-path invariants for one pair of runs: per-cause cycles sum
 * exactly to total simulated cycles on both engines, and the entire
 * report — the walk, the wait decomposition, the retained path — is
 * byte-identical across engines (via the cp.json rendering).
 */
void
expectSameCriticalPath(const obs::CriticalPathTracker &event_cp,
                       const cpu::SimResult &event_result,
                       const obs::CriticalPathTracker &ref_cp,
                       const cpu::SimResult &ref_result,
                       const std::string &label)
{
    EXPECT_EQ(event_cp.report().pathCyclesTotal(), event_result.cycles)
        << label << " (event engine sum invariant)";
    EXPECT_EQ(ref_cp.report().pathCyclesTotal(), ref_result.cycles)
        << label << " (reference engine sum invariant)";
    EXPECT_EQ(obs::cpJsonString(event_cp.report()),
              obs::cpJsonString(ref_cp.report()))
        << label << " (cp.json differs between engines)";
}

TEST(EngineDifferentialTest, FuzzGridByteIdentical)
{
    constexpr size_t kConfigs = 200;
    for (size_t i = 0; i < kConfigs; ++i) {
        // Exactly the core-invariants fuzz grid: same seeds, same
        // geometry/workload generators, same mode rotation.
        Rng rng(0xfeed0000 + i);
        cpu::CoreConfig core = test::randomFuzzCore(rng, i);
        workloads::SyntheticConfig wl = test::randomFuzzWorkload(rng, i);
        model::TcaMode mode = test::fuzzModeFor(i);

        std::string label =
            "config " + std::to_string(i) + " mode " +
            model::tcaModeName(mode) + " depth " +
            std::to_string(core.accelQueueDepth);

        {
            workloads::SyntheticWorkload workload(wl);
            StreamDigestSink event_sink, ref_sink;
            stats::StatsSnapshot event_stats, ref_stats;
            obs::CriticalPathTracker event_cp, ref_cp;
            cpu::SimResult event_result = workloads::runBaselineOnce(
                workload, core, &event_sink, {}, &event_stats,
                cpu::Engine::Event, &event_cp);
            cpu::SimResult ref_result = workloads::runBaselineOnce(
                workload, core, &ref_sink, {}, &ref_stats,
                cpu::Engine::Reference, &ref_cp);
            expectSameRun(event_result, event_sink, event_stats,
                          ref_result, ref_sink, ref_stats,
                          label + " baseline");
            expectSameCriticalPath(event_cp, event_result, ref_cp,
                                   ref_result, label + " baseline");
        }
        {
            workloads::SyntheticWorkload workload(wl);
            StreamDigestSink event_sink, ref_sink;
            stats::StatsSnapshot event_stats, ref_stats;
            obs::CriticalPathTracker event_cp, ref_cp;
            cpu::SimResult event_result = workloads::runAcceleratedOnce(
                workload, core, mode, &event_sink, {}, &event_stats,
                cpu::Engine::Event, &event_cp);
            cpu::SimResult ref_result = workloads::runAcceleratedOnce(
                workload, core, mode, &ref_sink, {}, &ref_stats,
                cpu::Engine::Reference, &ref_cp);
            EXPECT_GT(event_result.accelInvocations, 0u) << label;
            expectSameRun(event_result, event_sink, event_stats,
                          ref_result, ref_sink, ref_stats,
                          label + " accelerated");
            expectSameCriticalPath(event_cp, event_result, ref_cp,
                                   ref_result, label + " accelerated");
        }

        if (HasFatalFailure() || HasNonfatalFailure())
            break; // the first diverging config is enough signal
    }
}

/**
 * The experiment driver (baseline + model calibration + all four mode
 * runs) must produce identical speedups and error percentages under
 * either engine — the end-to-end path the benches and figures use.
 */
TEST(EngineDifferentialTest, ExperimentsMatchAcrossEngines)
{
    workloads::SyntheticConfig wl;
    wl.fillerUops = 4000;
    wl.numInvocations = 4;
    wl.regionUops = 80;
    wl.accelLatency = 32;
    wl.accelMemRequests = 3;
    wl.mispredictRate = 0.004;
    wl.seed = 42;

    cpu::CoreConfig core;
    core.validate();

    workloads::ExperimentOptions event_opts;
    event_opts.engine = cpu::Engine::Event;
    event_opts.profileIntervals = true;
    workloads::ExperimentOptions ref_opts = event_opts;
    ref_opts.engine = cpu::Engine::Reference;

    workloads::SyntheticWorkload event_wl(wl), ref_wl(wl);
    workloads::ExperimentResult event_result =
        workloads::runExperiment(event_wl, core, event_opts);
    workloads::ExperimentResult ref_result =
        workloads::runExperiment(ref_wl, core, ref_opts);

    expectSameResult(event_result.baseline, ref_result.baseline,
                     "experiment baseline");
    for (size_t m = 0; m < model::allTcaModes.size(); ++m) {
        const workloads::ModeOutcome &ev = event_result.modes[m];
        const workloads::ModeOutcome &rf = ref_result.modes[m];
        std::string label = std::string("experiment mode ") +
                            model::tcaModeName(ev.mode);
        expectSameResult(ev.sim, rf.sim, label);
        EXPECT_EQ(ev.measuredSpeedup, rf.measuredSpeedup) << label;
        EXPECT_EQ(ev.modeledSpeedup, rf.modeledSpeedup) << label;
        EXPECT_EQ(ev.errorPercent, rf.errorPercent) << label;
        EXPECT_EQ(ev.intervals.accelLatency.numSamples(),
                  rf.intervals.accelLatency.numSamples())
            << label;
        EXPECT_EQ(ev.intervals.accelLatency.mean(),
                  rf.intervals.accelLatency.mean())
            << label;
        EXPECT_EQ(ev.intervals.accelLatency.buckets(),
                  rf.intervals.accelLatency.buckets())
            << label;
    }
}

} // namespace
} // namespace tca
