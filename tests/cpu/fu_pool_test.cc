#include <gtest/gtest.h>

#include "cpu/fu_pool.hh"

namespace tca {
namespace cpu {
namespace {

using trace::OpClass;

TEST(FuPoolTest, AluBudgetPerCycle)
{
    CoreConfig conf;
    conf.intAluUnits = 2;
    FuPool pool(conf);
    pool.newCycle();
    EXPECT_TRUE(pool.available(OpClass::IntAlu));
    pool.consume(OpClass::IntAlu);
    EXPECT_TRUE(pool.available(OpClass::IntAlu));
    pool.consume(OpClass::IntAlu);
    EXPECT_FALSE(pool.available(OpClass::IntAlu));
}

TEST(FuPoolTest, NewCycleRestoresBudget)
{
    CoreConfig conf;
    conf.intAluUnits = 1;
    FuPool pool(conf);
    pool.newCycle();
    pool.consume(OpClass::IntAlu);
    EXPECT_FALSE(pool.available(OpClass::IntAlu));
    pool.newCycle();
    EXPECT_TRUE(pool.available(OpClass::IntAlu));
}

TEST(FuPoolTest, FpClassesShareUnits)
{
    CoreConfig conf;
    conf.fpUnits = 1;
    FuPool pool(conf);
    pool.newCycle();
    pool.consume(OpClass::FpMul);
    EXPECT_FALSE(pool.available(OpClass::FpAdd));
    EXPECT_FALSE(pool.available(OpClass::FpMacc));
}

TEST(FuPoolTest, IntMulSeparateFromAlu)
{
    CoreConfig conf;
    conf.intAluUnits = 1;
    conf.intMulUnits = 1;
    FuPool pool(conf);
    pool.newCycle();
    pool.consume(OpClass::IntAlu);
    EXPECT_TRUE(pool.available(OpClass::IntMul));
}

TEST(FuPoolTest, MemAndAccelNotFuLimited)
{
    CoreConfig conf;
    FuPool pool(conf);
    pool.newCycle();
    for (int i = 0; i < 100; ++i) {
        EXPECT_TRUE(pool.available(OpClass::Load));
        EXPECT_TRUE(pool.available(OpClass::Store));
        EXPECT_TRUE(pool.available(OpClass::Accel));
    }
}

TEST(FuPoolTest, NopUsesAluSlot)
{
    CoreConfig conf;
    conf.intAluUnits = 1;
    FuPool pool(conf);
    pool.newCycle();
    pool.consume(OpClass::Nop);
    EXPECT_FALSE(pool.available(OpClass::IntAlu));
}

} // namespace
} // namespace cpu
} // namespace tca
