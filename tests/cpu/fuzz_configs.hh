/**
 * @file
 * Seeded-random (but always valid) core geometries and synthetic
 * workload shapes, shared by the window-invariant fuzz suite and the
 * event-vs-reference engine differential suite so both sweep the
 * exact same 200-config grid.
 */

#ifndef TCASIM_TESTS_CPU_FUZZ_CONFIGS_HH
#define TCASIM_TESTS_CPU_FUZZ_CONFIGS_HH

#include <algorithm>
#include <string>

#include "cpu/core_config.hh"
#include "model/tca_mode.hh"
#include "util/random.hh"
#include "workloads/synthetic.hh"

namespace tca {
namespace test {

/**
 * The grid's TCA mode for config `index`: every suite sharing the grid
 * rotates through all five modes (including L_T_async) so engine
 * differentials and invariants cover the async command queue too.
 */
inline model::TcaMode
fuzzModeFor(size_t index)
{
    return model::allTcaModes[index % model::allTcaModes.size()];
}

/**
 * The async command-queue depth for config `index`: rotates {1, 2, 4,
 * 8} across the grid's L_T_async slots (harmless for sync modes, which
 * never touch the queue).
 */
inline uint32_t
fuzzQueueDepthFor(size_t index)
{
    static constexpr uint32_t depths[] = {1, 2, 4, 8};
    return depths[(index / model::allTcaModes.size()) % 4];
}

/** A random but always-valid core geometry. */
inline cpu::CoreConfig
randomFuzzCore(Rng &rng, size_t index)
{
    cpu::CoreConfig core;
    core.name = "fuzz" + std::to_string(index);
    core.dispatchWidth = static_cast<uint32_t>(rng.nextRange(1, 4));
    core.issueWidth = static_cast<uint32_t>(rng.nextRange(1, 4));
    core.commitWidth = static_cast<uint32_t>(rng.nextRange(1, 4));
    core.robSize = static_cast<uint32_t>(rng.nextRange(16, 96));
    core.iqSize = std::min(
        core.robSize, static_cast<uint32_t>(rng.nextRange(8, 64)));
    core.lsqSize = std::min(
        core.robSize, static_cast<uint32_t>(rng.nextRange(8, 48)));
    core.memPorts = static_cast<uint32_t>(rng.nextRange(1, 3));
    core.intAluUnits = static_cast<uint32_t>(rng.nextRange(1, 3));
    core.intMulUnits = static_cast<uint32_t>(rng.nextRange(1, 2));
    core.fpUnits = static_cast<uint32_t>(rng.nextRange(1, 2));
    core.branchUnits = static_cast<uint32_t>(rng.nextRange(1, 2));
    core.commitLatency = static_cast<uint32_t>(rng.nextRange(1, 12));
    core.redirectPenalty = static_cast<uint32_t>(rng.nextRange(4, 16));
    core.accelQueueDepth = fuzzQueueDepthFor(index);
    // A third of the grid forces odd ROB/IQ/LSQ geometries: the SoA
    // ROB's wrapping slot lookup and the fixed-ring LSQ bounds sit at
    // different alignments when the window size is odd, so the
    // differential and invariant sweeps must not see only the even
    // sizes nextRange tends to produce in bulk.
    if (index % 3 == 1) {
        core.robSize |= 1;
        core.iqSize = std::min(core.robSize, core.iqSize | 1);
        core.lsqSize = std::min(core.robSize, core.lsqSize | 1);
    }
    core.validate();
    return core;
}

/** A small synthetic workload to run on it. */
inline workloads::SyntheticConfig
randomFuzzWorkload(Rng &rng, size_t index)
{
    workloads::SyntheticConfig conf;
    conf.fillerUops = rng.nextRange(600, 2400);
    conf.numInvocations = static_cast<uint32_t>(rng.nextRange(1, 4));
    conf.regionUops = static_cast<uint32_t>(rng.nextRange(40, 120));
    conf.accelLatency = static_cast<uint32_t>(rng.nextRange(8, 64));
    conf.accelMemRequests = static_cast<uint32_t>(rng.nextRange(0, 4));
    conf.mispredictRate = rng.nextDouble() * 0.01;
    conf.seed = 7000 + index;
    return conf;
}

} // namespace test
} // namespace tca

#endif // TCASIM_TESTS_CPU_FUZZ_CONFIGS_HH
