#include <gtest/gtest.h>

#include "accel/fixed_latency_tca.hh"
#include "cpu/core.hh"
#include "trace/builder.hh"

namespace tca {
namespace cpu {
namespace {

using model::TcaMode;
using trace::TraceBuilder;
using trace::VectorTrace;

CoreConfig
testConfig()
{
    CoreConfig conf;
    conf.robSize = 64;
    conf.iqSize = 32;
    conf.lsqSize = 32;
    conf.commitLatency = 10;
    return conf;
}

TEST(MultiTcaTest, InvocationsRouteToTheRightDevice)
{
    accel::FixedLatencyTca fast(5), slow(50);
    mem::MemHierarchy hierarchy{mem::HierarchyConfig{}};
    Core core(testConfig(), hierarchy);
    core.bindAccelerator(&fast, TcaMode::L_T, 0);
    core.bindAccelerator(&slow, TcaMode::L_T, 1);

    TraceBuilder b;
    b.accel(0, trace::noReg, trace::noReg, /*port=*/0);
    b.accel(1, trace::noReg, trace::noReg, /*port=*/1);
    b.accel(2, trace::noReg, trace::noReg, /*port=*/0);
    VectorTrace trace(b.take());
    SimResult r = core.run(trace);

    EXPECT_EQ(r.accelInvocations, 3u);
    EXPECT_EQ(fast.invocationsStarted(), 2u);
    EXPECT_EQ(slow.invocationsStarted(), 1u);
}

TEST(MultiTcaTest, PortsExecuteConcurrently)
{
    // Two 100-cycle TCAs on separate ports overlap; on the same port
    // they serialize.
    accel::FixedLatencyTca tca_a(100), tca_b(100);

    TraceBuilder two_ports;
    two_ports.accel(0, trace::noReg, trace::noReg, 0);
    two_ports.accel(1, trace::noReg, trace::noReg, 1);
    TraceBuilder one_port;
    one_port.accel(0, trace::noReg, trace::noReg, 0);
    one_port.accel(1, trace::noReg, trace::noReg, 0);

    mem::MemHierarchy h1{mem::HierarchyConfig{}};
    Core c1(testConfig(), h1);
    c1.bindAccelerator(&tca_a, TcaMode::L_T, 0);
    c1.bindAccelerator(&tca_b, TcaMode::L_T, 1);
    VectorTrace t1(two_ports.take());
    SimResult parallel = c1.run(t1);

    mem::MemHierarchy h2{mem::HierarchyConfig{}};
    Core c2(testConfig(), h2);
    c2.bindAccelerator(&tca_a, TcaMode::L_T, 0);
    VectorTrace t2(one_port.take());
    SimResult serial = c2.run(t2);

    EXPECT_LT(parallel.cycles, serial.cycles - 50);
}

TEST(MultiTcaTest, PerPortIntegrationModes)
{
    // Port 0 runs L_T (no barrier); port 1 runs NL_NT (barrier). Only
    // invocations of port 1 stall dispatch.
    accel::FixedLatencyTca relaxed(30), strict(30);

    TraceBuilder b;
    for (int i = 0; i < 100; ++i)
        b.alu(static_cast<trace::RegId>(1 + (i % 16)));
    b.accel(0, trace::noReg, trace::noReg, 0); // L_T port
    for (int i = 0; i < 100; ++i)
        b.alu(static_cast<trace::RegId>(1 + (i % 16)));
    b.accel(0, trace::noReg, trace::noReg, 1); // NL_NT port
    for (int i = 0; i < 100; ++i)
        b.alu(static_cast<trace::RegId>(1 + (i % 16)));
    auto ops = b.take();

    mem::MemHierarchy hierarchy{mem::HierarchyConfig{}};
    Core core(testConfig(), hierarchy);
    core.bindAccelerator(&relaxed, TcaMode::L_T, 0);
    core.bindAccelerator(&strict, TcaMode::NL_NT, 1);
    VectorTrace trace(ops);
    SimResult r = core.run(trace);

    EXPECT_GT(r.stalls(StallCause::SerializeBarrier), 0u);
    EXPECT_EQ(r.accelInvocations, 2u);
}

TEST(MultiTcaTest, MixedModesOrderedAgainstUniformStrict)
{
    // A core where only the rare coarse TCA is NL_NT beats a core
    // where both TCAs are NL_NT.
    accel::FixedLatencyTca fine(10), coarse(200);

    TraceBuilder b;
    for (uint32_t i = 0; i < 40; ++i) {
        for (int j = 0; j < 60; ++j)
            b.alu(static_cast<trace::RegId>(1 + (j % 16)));
        b.accel(i, trace::noReg, trace::noReg, 0); // fine, frequent
    }
    b.accel(0, trace::noReg, trace::noReg, 1); // coarse, once
    auto ops = b.take();

    auto run_with = [&](TcaMode fine_mode) {
        mem::MemHierarchy hierarchy{mem::HierarchyConfig{}};
        Core core(testConfig(), hierarchy);
        core.bindAccelerator(&fine, fine_mode, 0);
        core.bindAccelerator(&coarse, TcaMode::NL_NT, 1);
        VectorTrace trace(ops);
        return core.run(trace).cycles;
    };
    EXPECT_LT(run_with(TcaMode::L_T), run_with(TcaMode::NL_NT));
}

TEST(MultiTcaDeathTest, UnboundPortPanics)
{
    accel::FixedLatencyTca tca(10);
    mem::MemHierarchy hierarchy{mem::HierarchyConfig{}};
    Core core(testConfig(), hierarchy);
    core.bindAccelerator(&tca, TcaMode::L_T, 0);
    TraceBuilder b;
    b.accel(0, trace::noReg, trace::noReg, /*port=*/3);
    VectorTrace trace(b.take());
    EXPECT_DEATH(core.run(trace), "port 3");
}

} // namespace
} // namespace cpu
} // namespace tca
