#include <gtest/gtest.h>

#include "accel/fixed_latency_tca.hh"
#include "cpu/core.hh"
#include "trace/builder.hh"

namespace tca {
namespace cpu {
namespace {

using model::TcaMode;
using trace::TraceBuilder;
using trace::VectorTrace;

CoreConfig
testConfig()
{
    CoreConfig conf;
    conf.name = "test";
    conf.robSize = 64;
    conf.iqSize = 32;
    conf.lsqSize = 32;
    conf.commitLatency = 10;
    conf.redirectPenalty = 10;
    return conf;
}

/**
 * A load feeding a branch (so the branch resolves late), then the
 * accelerator, then trailing work. The load is cold: the branch stays
 * unresolved for the DRAM latency.
 */
std::vector<trace::MicroOp>
gateTrace(bool low_confidence)
{
    TraceBuilder b;
    b.load(5, 0x880000); // cold miss ~ DRAM latency
    b.branch(false, 5, low_confidence);
    b.accel(0);
    for (int i = 0; i < 20; ++i)
        b.alu(static_cast<trace::RegId>(10 + (i % 8)));
    return b.take();
}

SimResult
run(TcaMode mode, bool partial, std::vector<trace::MicroOp> ops)
{
    accel::FixedLatencyTca tca(80);
    mem::MemHierarchy hierarchy{mem::HierarchyConfig{}};
    Core core(testConfig(), hierarchy);
    core.bindAccelerator(&tca, mode);
    core.setPartialSpeculation(partial);
    VectorTrace trace(std::move(ops));
    return core.run(trace);
}

TEST(PartialSpecTest, LowConfidenceBranchGatesTheTca)
{
    // Partial speculation behind a low-confidence branch delays the
    // TCA until the branch resolves: the run takes roughly the DRAM
    // latency longer than full speculation.
    SimResult full = run(TcaMode::L_T, false, gateTrace(true));
    SimResult partial = run(TcaMode::L_T, true, gateTrace(true));
    EXPECT_GT(partial.cycles, full.cycles + 50);
}

TEST(PartialSpecTest, HighConfidenceBranchDoesNotGate)
{
    // The same branch marked high-confidence: partial == full.
    SimResult full = run(TcaMode::L_T, false, gateTrace(false));
    SimResult partial = run(TcaMode::L_T, true, gateTrace(false));
    EXPECT_EQ(partial.cycles, full.cycles);
}

TEST(PartialSpecTest, PartialFasterThanNonSpeculative)
{
    // Gated design still beats NL: it only waits for the branch to
    // *execute*, not for the whole window to commit.
    SimResult partial = run(TcaMode::L_T, true, gateTrace(true));
    SimResult nl = run(TcaMode::NL_T, false, gateTrace(true));
    EXPECT_LT(partial.cycles, nl.cycles);
}

TEST(PartialSpecTest, BracketedBetweenModes)
{
    SimResult full = run(TcaMode::L_T, false, gateTrace(true));
    SimResult partial = run(TcaMode::L_T, true, gateTrace(true));
    SimResult nl = run(TcaMode::NL_T, false, gateTrace(true));
    EXPECT_GE(partial.cycles, full.cycles);
    EXPECT_LE(partial.cycles, nl.cycles);
}

TEST(PartialSpecTest, NoEffectInNlModes)
{
    // NL already waits for everything; the gate is a no-op.
    SimResult plain = run(TcaMode::NL_T, false, gateTrace(true));
    SimResult gated = run(TcaMode::NL_T, true, gateTrace(true));
    EXPECT_EQ(plain.cycles, gated.cycles);
}

TEST(PartialSpecTest, ResolvedBranchNoLongerGates)
{
    // Low-confidence branch far ahead of the TCA: by the time the
    // accelerator dispatches, the branch has executed; no delay.
    TraceBuilder b;
    b.branch(false, trace::noReg, true); // resolves in 1 cycle
    for (int i = 0; i < 200; ++i)
        b.alu(static_cast<trace::RegId>(10 + (i % 8)));
    b.accel(0);
    auto ops = b.take();

    SimResult full = run(TcaMode::L_T, false, ops);
    SimResult partial = run(TcaMode::L_T, true, ops);
    EXPECT_EQ(partial.cycles, full.cycles);
}

} // namespace
} // namespace cpu
} // namespace tca
