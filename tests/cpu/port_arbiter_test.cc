#include <gtest/gtest.h>

#include "cpu/port_arbiter.hh"

namespace tca {
namespace cpu {
namespace {

TEST(PortArbiterTest, ClaimsImmediatelyWhenFree)
{
    PortArbiter ports(2);
    EXPECT_TRUE(ports.availableAt(0));
    EXPECT_EQ(ports.claim(5), 5u);
}

TEST(PortArbiterTest, TwoPortsTwoClaimsSameCycle)
{
    PortArbiter ports(2);
    EXPECT_EQ(ports.claim(0), 0u);
    EXPECT_EQ(ports.claim(0), 0u);
    // Third claim slips to the next cycle.
    EXPECT_EQ(ports.claim(0), 1u);
    EXPECT_FALSE(ports.availableAt(0));
}

TEST(PortArbiterTest, AvailabilityTracksOccupancy)
{
    PortArbiter ports(1);
    ports.claim(0);
    EXPECT_FALSE(ports.availableAt(0));
    EXPECT_TRUE(ports.availableAt(1));
}

TEST(PortArbiterTest, EarlierClaimsGetEarlierSlots)
{
    // Age priority: claims made first (older uops) get the earliest
    // slots.
    PortArbiter ports(1);
    mem::Cycle first = ports.claim(10);
    mem::Cycle second = ports.claim(10);
    EXPECT_LT(first, second);
}

TEST(PortArbiterTest, ResetFreesAllPorts)
{
    PortArbiter ports(1);
    ports.claim(0);
    ports.claim(0);
    ports.reset();
    EXPECT_TRUE(ports.availableAt(0));
    EXPECT_EQ(ports.claim(0), 0u);
}

TEST(PortArbiterTest, BackloggedPortsDrainInOrder)
{
    PortArbiter ports(2);
    std::vector<mem::Cycle> starts;
    for (int i = 0; i < 6; ++i)
        starts.push_back(ports.claim(0));
    // 2 per cycle: 0,0,1,1,2,2.
    EXPECT_EQ(starts[0], 0u);
    EXPECT_EQ(starts[1], 0u);
    EXPECT_EQ(starts[2], 1u);
    EXPECT_EQ(starts[3], 1u);
    EXPECT_EQ(starts[4], 2u);
    EXPECT_EQ(starts[5], 2u);
}

} // namespace
} // namespace cpu
} // namespace tca
