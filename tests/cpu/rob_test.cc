#include <gtest/gtest.h>

#include "cpu/rob.hh"

namespace tca {
namespace cpu {
namespace {

TEST(RobTest, AllocateRetireCycle)
{
    Rob rob(4);
    EXPECT_TRUE(rob.empty());
    EXPECT_FALSE(rob.full());

    rob.allocate(0);
    rob.allocate(1);
    EXPECT_EQ(rob.size(), 2u);
    EXPECT_EQ(rob.head().seq, 0u);

    rob.retireHead();
    EXPECT_EQ(rob.head().seq, 1u);
    EXPECT_TRUE(rob.isRetired(0));
    EXPECT_FALSE(rob.isRetired(1));
}

TEST(RobTest, FullAtCapacity)
{
    Rob rob(2);
    rob.allocate(0);
    rob.allocate(1);
    EXPECT_TRUE(rob.full());
    rob.retireHead();
    EXPECT_FALSE(rob.full());
    rob.allocate(2);
    EXPECT_TRUE(rob.full());
}

TEST(RobTest, SlotReuseAfterWraparound)
{
    Rob rob(3);
    for (uint64_t s = 0; s < 10; ++s) {
        rob.allocate(s);
        EXPECT_EQ(rob.entryFor(s).seq, s);
        rob.retireHead();
    }
    EXPECT_TRUE(rob.empty());
    EXPECT_EQ(rob.next(), 10u);
}

TEST(RobTest, LivenessQueries)
{
    Rob rob(8);
    rob.allocate(0);
    rob.allocate(1);
    rob.allocate(2);
    rob.retireHead();
    EXPECT_FALSE(rob.isLive(0));
    EXPECT_TRUE(rob.isLive(1));
    EXPECT_TRUE(rob.isLive(2));
    EXPECT_FALSE(rob.isLive(3)); // not yet allocated
}

TEST(RobTest, ForEachVisitsOldestToYoungest)
{
    Rob rob(4);
    rob.allocate(0);
    rob.allocate(1);
    rob.allocate(2);
    std::vector<uint64_t> seen;
    rob.forEach([&](RobEntry &entry) {
        seen.push_back(entry.seq);
        return true;
    });
    ASSERT_EQ(seen.size(), 3u);
    EXPECT_EQ(seen[0], 0u);
    EXPECT_EQ(seen[2], 2u);
}

TEST(RobTest, ForEachEarlyStop)
{
    Rob rob(4);
    rob.allocate(0);
    rob.allocate(1);
    int visits = 0;
    rob.forEach([&](RobEntry &) {
        ++visits;
        return false;
    });
    EXPECT_EQ(visits, 1);
}

TEST(RobDeathTest, AllocateWhenFullPanics)
{
    Rob rob(1);
    rob.allocate(0);
    EXPECT_DEATH(rob.allocate(1), "");
}

TEST(RobDeathTest, HeadOfEmptyPanics)
{
    Rob rob(2);
    EXPECT_DEATH(rob.head(), "");
}

TEST(RobTest, EntryStateDefaults)
{
    Rob rob(2);
    RobEntry &entry = rob.allocate(0);
    EXPECT_EQ(entry.state, UopState::Dispatched);
    for (uint64_t p : entry.srcProducer)
        EXPECT_EQ(p, noSeq);
}

} // namespace
} // namespace cpu
} // namespace tca
