#include <gtest/gtest.h>

#include "cpu/rob.hh"

namespace tca {
namespace cpu {
namespace {

TEST(RobTest, AllocateRetireCycle)
{
    Rob rob(4);
    EXPECT_TRUE(rob.empty());
    EXPECT_FALSE(rob.full());

    EXPECT_EQ(rob.allocate(), 0u);
    EXPECT_EQ(rob.allocate(), 1u);
    EXPECT_EQ(rob.size(), 2u);
    EXPECT_EQ(rob.oldest(), 0u);

    rob.retireHead();
    EXPECT_EQ(rob.oldest(), 1u);
    EXPECT_TRUE(rob.isRetired(0));
    EXPECT_FALSE(rob.isRetired(1));
}

TEST(RobTest, FullAtCapacity)
{
    Rob rob(2);
    rob.allocate();
    rob.allocate();
    EXPECT_TRUE(rob.full());
    rob.retireHead();
    EXPECT_FALSE(rob.full());
    rob.allocate();
    EXPECT_TRUE(rob.full());
}

TEST(RobTest, SlotReuseAfterWraparound)
{
    Rob rob(3);
    for (uint64_t s = 0; s < 10; ++s) {
        uint64_t seq = rob.allocate();
        EXPECT_EQ(seq, s);
        rob.hot(seq).dispatchCycle = s;
        rob.op(seq).addr = s * 8;
        EXPECT_EQ(rob.hot(seq).dispatchCycle, s);
        EXPECT_EQ(rob.op(seq).addr, s * 8);
        rob.retireHead();
    }
    EXPECT_TRUE(rob.empty());
    EXPECT_EQ(rob.next(), 10u);
}

TEST(RobTest, LivenessQueries)
{
    Rob rob(8);
    rob.allocate();
    rob.allocate();
    rob.allocate();
    rob.retireHead();
    EXPECT_FALSE(rob.isLive(0));
    EXPECT_TRUE(rob.isLive(1));
    EXPECT_TRUE(rob.isLive(2));
    EXPECT_FALSE(rob.isLive(3)); // not yet allocated
}

TEST(RobTest, HotStateDefaults)
{
    Rob rob(2);
    uint64_t seq = rob.allocate();
    const RobHot &h = rob.hot(seq);
    EXPECT_EQ(h.state, UopState::Dispatched);
    EXPECT_EQ(h.notReady, 0);
    EXPECT_EQ(h.waiterHead, util::arenaNil);
    EXPECT_EQ(h.parkHead, util::arenaNil);
    for (uint64_t p : h.srcProducer)
        EXPECT_EQ(p, noSeq);
}

TEST(RobTest, HotEntryIsOneCacheLine)
{
    EXPECT_EQ(sizeof(RobHot), 64u);
}

TEST(RobTest, WaiterChainDeliversAllConsumers)
{
    Rob rob(8);
    uint64_t producer = rob.allocate();
    uint64_t c1 = rob.allocate();
    uint64_t c2 = rob.allocate();
    rob.addWaiter(producer, c1);
    rob.addWaiter(producer, c2);
    EXPECT_EQ(rob.auditWaiterArena(), 2u);

    std::vector<uint64_t> woken;
    size_t delivered = rob.consumeWaiters(
        producer, [&](uint64_t seq) { woken.push_back(seq); });
    EXPECT_EQ(delivered, 2u);
    ASSERT_EQ(woken.size(), 2u);
    // LIFO chain: newest registration first.
    EXPECT_EQ(woken[0], c2);
    EXPECT_EQ(woken[1], c1);
    // Chain is consumed: nothing left, nodes recycled.
    EXPECT_EQ(rob.consumeWaiters(producer, [](uint64_t) {}), 0u);
    EXPECT_EQ(rob.auditWaiterArena(), 0u);
}

TEST(RobTest, WaiterNodesRecycleThroughFreelist)
{
    Rob rob(4);
    uint64_t p = rob.allocate();
    uint64_t c = rob.allocate();
    for (int round = 0; round < 100; ++round) {
        rob.addWaiter(p, c);
        rob.addParkWaiter(p, c);
        rob.consumeWaiters(p, [](uint64_t) {});
        rob.consumeParkWaiters(p, [](uint64_t) {});
    }
    // Steady-state churn reuses the same two nodes instead of growing.
    EXPECT_LE(rob.auditWaiterArena(), 2u);
}

TEST(RobTest, ParkChainIsSeparateFromWaiterChain)
{
    Rob rob(8);
    uint64_t p = rob.allocate();
    uint64_t w = rob.allocate();
    uint64_t parked = rob.allocate();
    rob.addWaiter(p, w);
    rob.addParkWaiter(p, parked);

    std::vector<uint64_t> woken;
    rob.consumeParkWaiters(p,
                           [&](uint64_t seq) { woken.push_back(seq); });
    ASSERT_EQ(woken.size(), 1u);
    EXPECT_EQ(woken[0], parked);
    // Waiter chain untouched by the park drain.
    EXPECT_EQ(rob.consumeWaiters(p, [](uint64_t) {}), 1u);
}

TEST(RobTest, ResetRewindsSequencesAndArena)
{
    Rob rob(4);
    uint64_t p = rob.allocate();
    uint64_t c = rob.allocate();
    rob.addWaiter(p, c);
    EXPECT_EQ(rob.allocations().value(), 2u);

    rob.reset();
    EXPECT_TRUE(rob.empty());
    EXPECT_EQ(rob.next(), 0u);
    EXPECT_EQ(rob.oldest(), 0u);
    EXPECT_EQ(rob.allocations().value(), 0u);
    EXPECT_EQ(rob.retires().value(), 0u);
    EXPECT_EQ(rob.auditWaiterArena(), 0u);

    // Fresh allocations start over and see clean chain heads.
    uint64_t seq = rob.allocate();
    EXPECT_EQ(seq, 0u);
    EXPECT_EQ(rob.hot(seq).waiterHead, util::arenaNil);
}

TEST(RobDeathTest, AllocateWhenFullPanics)
{
    Rob rob(1);
    rob.allocate();
    EXPECT_DEATH(rob.allocate(), "");
}

TEST(RobDeathTest, AccessOfDeadSeqPanics)
{
    Rob rob(2);
    rob.allocate();
    rob.retireHead();
    EXPECT_DEATH(rob.hot(0), "");
    EXPECT_DEATH(rob.op(5), ""); // beyond the live window
}

} // namespace
} // namespace cpu
} // namespace tca
