/**
 * @file
 * Telemetry epoch-delta telescoping over the 200-entry fuzz grid, on
 * both engines: for every config the per-epoch Sample records must sum
 * *exactly* to the run's final totals — cycles, commits, ROB occupancy,
 * per-cause stall cycles, accelerator starts — and every tracked stats
 * counter's per-epoch deltas must telescope to its final registry
 * value. The epoch length is a prime (257) so boundaries land inside
 * skipped stretches and partial epochs are common.
 *
 * Across engines the non-delta sample fields must also match epoch by
 * epoch: the event engine folds skipped ranges into epochs
 * arithmetically (bulk onSkippedCycles), the reference engine ticks
 * every cycle, and both must observe the same per-epoch activity.
 * Counter deltas are exempt from the per-epoch comparison — the event
 * engine bulk-accounts a skip's counter increments before notifying,
 * so increments inside a skipped range land in its first epoch — but
 * their telescoped sums must agree.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "cpu/core_config.hh"
#include "cpu/sim_result.hh"
#include "model/tca_mode.hh"
#include "obs/telemetry.hh"
#include "obs/telemetry_publishers.hh"
#include "stats/registry.hh"
#include "util/random.hh"
#include "workloads/experiment.hh"
#include "workloads/synthetic.hh"

#include "fuzz_configs.hh"

namespace tca {
namespace {

constexpr uint64_t kEpoch = 257;

/** Everything one telemetered run leaves behind. */
struct RunCapture
{
    cpu::SimResult result;
    stats::StatsSnapshot snapshot;
    std::vector<obs::TelemetryRecord> records;
};

RunCapture
capture(workloads::SyntheticConfig wl, const cpu::CoreConfig &core,
        cpu::Engine engine, bool accelerated, model::TcaMode mode)
{
    RunCapture cap;
    obs::TelemetryBus bus(kEpoch);
    auto buffer_owner = std::make_unique<obs::BufferingPublisher>();
    obs::BufferingPublisher *buffer = buffer_owner.get();
    bus.addPublisher(std::move(buffer_owner));
    obs::TelemetrySampler sampler(&bus);
    sampler.setRunLabel("fuzz");

    workloads::SyntheticWorkload workload(wl);
    if (accelerated) {
        cap.result = workloads::runAcceleratedOnce(
            workload, core, mode, nullptr, {}, &cap.snapshot, engine,
            nullptr, &sampler);
    } else {
        cap.result = workloads::runBaselineOnce(
            workload, core, nullptr, {}, &cap.snapshot, engine, nullptr,
            &sampler);
    }
    cap.records = buffer->records();
    return cap;
}

/** Sample sums telescope exactly to the run's final totals. */
void
expectTelescopes(const RunCapture &cap, const std::string &label)
{
    ASSERT_GE(cap.records.size(), 3u) << label;
    const obs::TelemetryRecord &begin = cap.records.front();
    const obs::TelemetryRecord &end = cap.records.back();
    ASSERT_EQ(begin.kind, obs::TelemetryKind::RunBegin) << label;
    ASSERT_EQ(end.kind, obs::TelemetryKind::RunEnd) << label;
    EXPECT_EQ(begin.epochCycles, kEpoch) << label;
    EXPECT_EQ(end.totalCycles, cap.result.cycles) << label;
    EXPECT_EQ(end.committedUops, cap.result.committedUops) << label;
    EXPECT_FALSE(begin.counterPaths.empty()) << label;

    uint64_t cycles = 0, rob = 0, commits = 0, accel_starts = 0;
    std::vector<uint64_t> stalls(begin.stallCauseNames.size(), 0);
    std::vector<uint64_t> deltas(begin.counterPaths.size(), 0);
    uint64_t expected_epoch = 0;
    for (size_t i = 1; i + 1 < cap.records.size(); ++i) {
        const obs::TelemetryRecord &s = cap.records[i];
        ASSERT_EQ(s.kind, obs::TelemetryKind::Sample) << label;
        // Epochs are contiguous and anchored at epoch * kEpoch.
        EXPECT_EQ(s.epoch, expected_epoch) << label;
        EXPECT_EQ(s.startCycle, s.epoch * kEpoch) << label;
        EXPECT_LE(s.cycles, kEpoch) << label;
        ++expected_epoch;

        cycles += s.cycles;
        rob += s.robOccupancySum;
        commits += s.commits;
        accel_starts += s.accelStarts;
        ASSERT_EQ(s.stallCycles.size(), stalls.size()) << label;
        for (size_t c = 0; c < stalls.size(); ++c)
            stalls[c] += s.stallCycles[c];
        ASSERT_EQ(s.counterDeltas.size(), deltas.size()) << label;
        for (size_t c = 0; c < deltas.size(); ++c)
            deltas[c] += s.counterDeltas[c];
    }

    EXPECT_EQ(cycles, cap.result.cycles) << label;
    EXPECT_EQ(commits, cap.result.committedUops) << label;
    EXPECT_EQ(rob, cap.result.robOccupancySum) << label;
    EXPECT_EQ(accel_starts, cap.result.accelInvocations) << label;
    ASSERT_EQ(stalls.size(), cap.result.stallCycles.size()) << label;
    for (size_t c = 0; c < stalls.size(); ++c) {
        if (begin.stallCauseNames[c] == "accel_queue_full") {
            // Port-level backpressure, not a dispatch stall: the core
            // counts it without an onDispatchStall emission, so the
            // event stream carries none. The cycles still telescope
            // through the cpu.core.stall.accel_queue_full counter
            // delta, checked with every other counter below.
            EXPECT_EQ(stalls[c], 0u) << label;
            continue;
        }
        EXPECT_EQ(stalls[c], cap.result.stallCycles[c])
            << label << " stall cause " << c;
    }

    // Every tracked counter's deltas sum to its final snapshot value:
    // the run-local registry starts at zero, so telescoping means the
    // stream reconstructs the final stats tree counter for counter.
    for (size_t c = 0; c < deltas.size(); ++c) {
        const std::string &path = begin.counterPaths[c];
        ASSERT_TRUE(cap.snapshot.has(path)) << label << " " << path;
        EXPECT_EQ(deltas[c], cap.snapshot.leaves().at(path).count)
            << label << " " << path;
    }
}

/** Per-epoch activity matches across engines (deltas compared in sum
 *  by expectTelescopes against each engine's own snapshot). */
void
expectSameEpochs(const RunCapture &event, const RunCapture &ref,
                 const std::string &label)
{
    ASSERT_EQ(event.records.size(), ref.records.size()) << label;
    for (size_t i = 0; i < event.records.size(); ++i) {
        const obs::TelemetryRecord &e = event.records[i];
        const obs::TelemetryRecord &r = ref.records[i];
        ASSERT_EQ(e.kind, r.kind) << label << " record " << i;
        if (e.kind != obs::TelemetryKind::Sample)
            continue;
        std::string at = label + " epoch " + std::to_string(e.epoch);
        EXPECT_EQ(e.epoch, r.epoch) << at;
        EXPECT_EQ(e.cycles, r.cycles) << at;
        EXPECT_EQ(e.robOccupancySum, r.robOccupancySum) << at;
        EXPECT_EQ(e.commits, r.commits) << at;
        EXPECT_EQ(e.accelStarts, r.accelStarts) << at;
        EXPECT_EQ(e.accelBusyCycles, r.accelBusyCycles) << at;
        EXPECT_EQ(e.accelQueuePending, r.accelQueuePending) << at;
        EXPECT_EQ(e.stallCycles, r.stallCycles) << at;
    }
}

TEST(TelemetryTelescope, FuzzGridTelescopesOnBothEngines)
{
    constexpr size_t kConfigs = 200;
    for (size_t i = 0; i < kConfigs; ++i) {
        // Exactly the core-invariants fuzz grid: same seeds, same
        // geometry/workload generators, same mode rotation.
        Rng rng(0xfeed0000 + i);
        cpu::CoreConfig core = test::randomFuzzCore(rng, i);
        workloads::SyntheticConfig wl = test::randomFuzzWorkload(rng, i);
        model::TcaMode mode = test::fuzzModeFor(i);
        bool accelerated = (i % 2) == 1; // alternate run flavors

        std::string label = "config " + std::to_string(i) +
            (accelerated
                 ? std::string(" mode ") + model::tcaModeName(mode)
                 : std::string(" baseline"));

        RunCapture event = capture(wl, core, cpu::Engine::Event,
                                   accelerated, mode);
        RunCapture ref = capture(wl, core, cpu::Engine::Reference,
                                 accelerated, mode);
        expectTelescopes(event, label + " (event)");
        expectTelescopes(ref, label + " (reference)");
        expectSameEpochs(event, ref, label);

        if (HasFatalFailure() || HasNonfatalFailure())
            break; // the first diverging config is enough signal
    }
}

} // namespace
} // namespace tca
