/**
 * @file
 * Model-vs-simulator validation for the asynchronous L_T_async mode:
 * a miniature Fig. 4 grid gating the mode's mean absolute error at
 * the CI threshold, ordering agreement between model and simulator,
 * queue-depth monotonicity of the modeled t_queue term, and TCA_JOBS
 * byte-identity for experiment batches that include async runs.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <iomanip>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "model/interval_model.hh"
#include "model/validation.hh"
#include "workloads/experiment.hh"
#include "workloads/synthetic.hh"

namespace tca {
namespace workloads {
namespace {

using model::TcaMode;

/** CI gate: mean |error| of the async mode on the mini-fig4 grid.
 *  The sync modes validate under the same harness at 35% (see
 *  validation_test.cc); the async equation carries the extra t_queue
 *  approximation, so its band is set from the observed margin. */
constexpr double kAsyncMeanAbsErrorCi = 40.0;

/** Miniature Fig. 4 sweep: invocation counts at test scale. */
ExperimentBatch
miniFig4(uint32_t filler = 30000)
{
    const std::vector<uint32_t> sweep = {10, 40, 160};
    return runExperimentBatch(
        sweep.size(),
        [&, sweep](size_t i) {
            SyntheticConfig conf;
            conf.fillerUops = filler;
            conf.numInvocations = sweep[i];
            conf.regionUops = 200;
            conf.accelLatency = 50;
            conf.seed = 1000 + sweep[i];
            return std::make_unique<SyntheticWorkload>(conf);
        },
        cpu::a72CoreConfig(), ExperimentOptions{});
}

TEST(AsyncValidationTest, AsyncMeanAbsErrorWithinCiThreshold)
{
    ExperimentBatch batch = miniFig4();
    std::vector<model::ValidationPoint> points;
    for (const ExperimentResult &r : batch.results) {
        const ModeOutcome &async = r.forMode(TcaMode::L_T_async);
        points.push_back(
            {async.modeledSpeedup, async.measuredSpeedup});
        EXPECT_TRUE(std::isfinite(async.errorPercent));
        EXPECT_GT(async.measuredSpeedup, 0.0);
        EXPECT_GT(async.modeledSpeedup, 0.0);
    }
    model::ErrorSummary summary = model::summarizeErrors(points);
    EXPECT_EQ(summary.count, batch.results.size());
    EXPECT_LT(summary.meanAbs, kAsyncMeanAbsErrorCi)
        << "L_T_async model drifted from the simulator: mean |err| "
        << summary.meanAbs << "% (max " << summary.maxAbs << "%)";
}

TEST(AsyncValidationTest, ModelAndSimAgreeAsyncBeatsSyncLt)
{
    // The defining property of the fifth mode — device time overlaps
    // the non-accelerated stream — must hold in the simulator AND be
    // captured by the model's equation, point for point.
    ExperimentBatch batch = miniFig4();
    for (const ExperimentResult &r : batch.results) {
        const ModeOutcome &async = r.forMode(TcaMode::L_T_async);
        const ModeOutcome &lt = r.forMode(TcaMode::L_T);
        EXPECT_GE(async.measuredSpeedup + 1e-9, lt.measuredSpeedup)
            << r.workloadName;
        EXPECT_GE(async.modeledSpeedup + 1e-9, lt.modeledSpeedup)
            << r.workloadName;
    }
}

TEST(AsyncValidationTest, ModeledQueueTermMonotoneInDepth)
{
    // A deeper command queue can only absorb more burstiness: the
    // modeled async interval time is non-increasing in depth, at
    // fine and coarse granularity alike.
    for (double granularity : {100.0, 5000.0, 1e6}) {
        model::TcaParams params =
            model::armA72Preset().apply(model::TcaParams{});
        params.accelerationFactor = 4.0;
        params = params.withAcceleratable(0.4).withGranularity(
            granularity);
        double prev = -1.0;
        for (uint32_t depth : {1u, 2u, 4u, 8u, 16u}) {
            params.accelQueueDepth = depth;
            model::IntervalModel m(params);
            double speedup = m.speedup(TcaMode::L_T_async);
            EXPECT_TRUE(std::isfinite(speedup));
            if (prev >= 0.0) {
                EXPECT_GE(speedup + 1e-12, prev)
                    << "granularity " << granularity << " depth "
                    << depth;
            }
            prev = speedup;
        }
    }
}

/** Run `body` with TCA_JOBS set to `jobs`, restoring the old value. */
template <typename Body>
auto
withJobs(const char *jobs, Body &&body)
{
    const char *old = std::getenv("TCA_JOBS");
    std::string saved = old ? old : "";
    bool had = old != nullptr;
    setenv("TCA_JOBS", jobs, 1);
    auto result = body();
    if (had)
        setenv("TCA_JOBS", saved.c_str(), 1);
    else
        unsetenv("TCA_JOBS");
    return result;
}

TEST(AsyncValidationTest, AsyncBatchByteIdenticalAcrossJobs)
{
    // The async rows of a batch — measured cycles, both speedups, the
    // signed error — must be bitwise identical under TCA_JOBS=1 and
    // TCA_JOBS=8 (hexfloat serialization, no tolerance).
    auto run = [] {
        ExperimentBatch batch = miniFig4(12000);
        std::ostringstream os;
        os << std::hexfloat;
        for (const ExperimentResult &r : batch.results) {
            const ModeOutcome &async = r.forMode(TcaMode::L_T_async);
            os << r.workloadName << ':' << async.sim.cycles << ','
               << async.sim.committedUops << ','
               << async.sim.accelLatencyTotal << ','
               << async.sim.stallCycles[static_cast<size_t>(
                      cpu::StallCause::AccelQueueFull)]
               << ',' << async.measuredSpeedup << ','
               << async.modeledSpeedup << ',' << async.errorPercent
               << ';';
        }
        return os.str();
    };
    std::string serial = withJobs("1", run);
    std::string parallel = withJobs("8", run);
    EXPECT_FALSE(serial.empty());
    EXPECT_EQ(serial, parallel);
}

} // namespace
} // namespace workloads
} // namespace tca
