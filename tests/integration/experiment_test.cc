#include <gtest/gtest.h>

#include "workloads/experiment.hh"
#include "workloads/heap_workload.hh"
#include "workloads/synthetic.hh"

namespace tca {
namespace workloads {
namespace {

using model::TcaMode;

TEST(ExperimentTest, SyntheticEndToEnd)
{
    SyntheticConfig conf;
    conf.fillerUops = 20000;
    conf.numInvocations = 40;
    conf.regionUops = 150;
    conf.accelLatency = 30;
    SyntheticWorkload wl(conf);

    ExperimentResult r = runExperiment(wl, cpu::a72CoreConfig());

    EXPECT_EQ(r.workloadName, "synthetic");
    EXPECT_GT(r.baseline.cycles, 0u);
    EXPECT_NEAR(r.params.acceleratableFraction,
                40.0 * 150.0 / (20000.0 + 6000.0), 0.01);

    for (const ModeOutcome &mode : r.modes) {
        EXPECT_GT(mode.measuredSpeedup, 0.0);
        EXPECT_GT(mode.modeledSpeedup, 0.0);
        EXPECT_TRUE(mode.functionalOk);
        EXPECT_EQ(mode.sim.accelInvocations, 40u);
    }

    // Measured mode ordering mirrors the model's.
    EXPECT_GE(r.forMode(TcaMode::L_T).measuredSpeedup,
              r.forMode(TcaMode::NL_NT).measuredSpeedup);
}

TEST(ExperimentTest, HeapEndToEndAlwaysHits)
{
    HeapConfig conf;
    conf.numCalls = 300;
    conf.fillerUopsPerGap = 150;
    HeapWorkload wl(conf);

    ExperimentResult r = runExperiment(wl, cpu::a72CoreConfig());
    for (const ModeOutcome &mode : r.modes) {
        EXPECT_TRUE(mode.functionalOk)
            << "heap TCA missed its tables in "
            << tcaModeName(mode.mode);
        EXPECT_EQ(mode.sim.accelInvocations, 300u);
        if (model::allowsTrailing(mode.mode)) {
            // With trailing instructions flowing, a 1-cycle allocator
            // TCA helps at this granularity.
            EXPECT_GT(mode.measuredSpeedup, 1.0)
                << tcaModeName(mode.mode);
        } else {
            // NT modes at this fine granularity can slow the program
            // down — the paper's headline motivation. Just sanity-
            // bound it.
            EXPECT_GT(mode.measuredSpeedup, 0.4)
                << tcaModeName(mode.mode);
        }
    }
}

TEST(ExperimentTest, ForModeLookup)
{
    SyntheticConfig conf;
    conf.fillerUops = 5000;
    conf.numInvocations = 5;
    conf.regionUops = 100;
    SyntheticWorkload wl(conf);
    ExperimentResult r = runExperiment(wl, cpu::a72CoreConfig());
    for (TcaMode mode : model::allTcaModes)
        EXPECT_EQ(r.forMode(mode).mode, mode);
}

TEST(ExperimentTest, MeasuredLatencyOptionTightensA)
{
    SyntheticConfig conf;
    conf.fillerUops = 10000;
    conf.numInvocations = 20;
    conf.regionUops = 120;
    conf.accelLatency = 25;
    SyntheticWorkload wl(conf);

    ExperimentOptions opts;
    opts.useMeasuredAccelLatency = true;
    ExperimentResult r =
        runExperiment(wl, cpu::a72CoreConfig(), opts);
    for (const ModeOutcome &mode : r.modes)
        EXPECT_GT(mode.modeledSpeedup, 0.0);
}

} // namespace
} // namespace workloads
} // namespace tca
