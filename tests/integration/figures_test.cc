/**
 * @file
 * Miniature versions of the figure-level shape claims recorded in
 * EXPERIMENTS.md, run at test scale so regressions in any layer
 * (workload, simulator, calibration) surface in ctest rather than
 * only in the bench output.
 */

#include <gtest/gtest.h>

#include "workloads/dgemm_workload.hh"
#include "workloads/experiment.hh"

namespace tca {
namespace workloads {
namespace {

using model::TcaMode;

TEST(FigureShapeTest, Fig6MiniDgemmModeOrderingAndGrowth)
{
    // 64x64 with 8x8 tiles: big speedup, modes ordered, functional.
    DgemmConfig conf;
    conf.n = 64;
    conf.blockN = 32;
    conf.tileN = 8;
    DgemmWorkload wl(conf);

    ExperimentOptions opts;
    opts.useMeasuredAccelLatency = true;
    ExperimentResult r = runExperiment(wl, cpu::a72CoreConfig(), opts);

    double lt = r.forMode(TcaMode::L_T).measuredSpeedup;
    double nlt = r.forMode(TcaMode::NL_T).measuredSpeedup;
    double lnt = r.forMode(TcaMode::L_NT).measuredSpeedup;
    double nlnt = r.forMode(TcaMode::NL_NT).measuredSpeedup;

    // Large acceleration (log-scale growth in the full figure).
    EXPECT_GT(lt, 5.0);
    // Mode ordering.
    EXPECT_GE(lt, nlt);
    EXPECT_GE(lt, lnt);
    EXPECT_GE(nlt, nlnt);
    EXPECT_GE(lnt, nlnt);
    // Even the weakest mode wins at this coarse tile granularity.
    EXPECT_GT(nlnt, 1.0);
    // Model exactness for L_T under measured-latency calibration,
    // pessimism for the others (the paper's Fig. 6 signature).
    EXPECT_NEAR(r.forMode(TcaMode::L_T).errorPercent, 0.0, 5.0);
    EXPECT_LE(r.forMode(TcaMode::NL_NT).errorPercent, 5.0);
    // Functional product verified in all four runs.
    for (const ModeOutcome &mode : r.modes)
        EXPECT_TRUE(mode.functionalOk);
}

TEST(FigureShapeTest, Fig6TileSizeShrinksModeSpread)
{
    // The paper: "larger absolute difference ... between the 4
    // different modes of the 2x2 accelerator" — relative spread
    // shrinks as tiles grow.
    auto spread = [](uint32_t tile) {
        DgemmConfig conf;
        conf.n = 64;
        conf.blockN = 32;
        conf.tileN = tile;
        DgemmWorkload wl(conf);
        ExperimentResult r =
            runExperiment(wl, cpu::a72CoreConfig());
        return r.forMode(TcaMode::L_T).measuredSpeedup /
               r.forMode(TcaMode::NL_NT).measuredSpeedup;
    };
    double spread2 = spread(2);
    double spread8 = spread(8);
    EXPECT_GT(spread2, spread8);
}

} // namespace
} // namespace workloads
} // namespace tca
