/**
 * @file
 * Tests for the experiment runner's calibration options and the
 * workload knobs added beyond the paper's defaults: occupancy-based
 * drain calibration, measured accelerator latency, dependent malloc
 * consumers, and per-class commit accounting.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "cpu/core.hh"
#include "workloads/experiment.hh"
#include "workloads/heap_workload.hh"
#include "workloads/string_workload.hh"
#include "workloads/synthetic.hh"

namespace tca {
namespace workloads {
namespace {

using model::TcaMode;

TEST(OptionsTest, DrainFromOccupancySetsExplicitDrain)
{
    SyntheticConfig conf;
    conf.fillerUops = 15000;
    conf.numInvocations = 30;
    conf.regionUops = 150;
    SyntheticWorkload wl(conf);

    ExperimentOptions opts;
    opts.drainFromOccupancy = true;
    ExperimentResult r = runExperiment(wl, cpu::a72CoreConfig(), opts);
    EXPECT_GE(r.params.explicitDrainTime, 0.0);
    EXPECT_NEAR(r.params.explicitDrainTime,
                r.baseline.avgRobOccupancy() / r.params.ipc, 1e-9);
}

TEST(OptionsTest, DefaultLeavesDrainEstimated)
{
    SyntheticConfig conf;
    conf.fillerUops = 10000;
    conf.numInvocations = 10;
    SyntheticWorkload wl(conf);
    ExperimentResult r = runExperiment(wl, cpu::a72CoreConfig());
    EXPECT_LT(r.params.explicitDrainTime, 0.0);
}

TEST(OptionsTest, OccupancyDrainReducesNlPessimismOnIlpRichCode)
{
    // The headline benefit of the occupancy calibration: on a high-ILP
    // workload the NL_T estimate tightens substantially.
    SyntheticConfig conf;
    conf.fillerUops = 40000;
    conf.numInvocations = 60;
    conf.regionUops = 250;
    conf.accelLatency = 50;
    conf.loadFraction = 0.0; // pure ALU: maximal ILP, empty window
    conf.storeFraction = 0.0;
    SyntheticWorkload wl(conf);

    ExperimentResult plain = runExperiment(wl, cpu::a72CoreConfig());
    ExperimentOptions opts;
    opts.drainFromOccupancy = true;
    ExperimentResult tuned =
        runExperiment(wl, cpu::a72CoreConfig(), opts);

    double plain_err =
        std::fabs(plain.forMode(TcaMode::NL_T).errorPercent);
    double tuned_err =
        std::fabs(tuned.forMode(TcaMode::NL_T).errorPercent);
    EXPECT_LT(tuned_err, plain_err);
}

TEST(OptionsTest, DependentMallocConsumersSlowTheSimulator)
{
    HeapConfig base;
    base.numCalls = 300;
    base.fillerUopsPerGap = 100;
    HeapConfig with_deps = base;
    with_deps.dependentUsesPerMalloc = 32;

    HeapWorkload wl_base(base), wl_deps(with_deps);
    ExperimentResult r_base =
        runExperiment(wl_base, cpu::a72CoreConfig());
    ExperimentResult r_deps =
        runExperiment(wl_deps, cpu::a72CoreConfig());

    // Dependent consumers reduce the achievable L_NT speedup (they
    // serialize behind the barrier + the TCA's result).
    EXPECT_LT(r_deps.forMode(TcaMode::L_NT).measuredSpeedup,
              r_base.forMode(TcaMode::L_NT).measuredSpeedup);
}

TEST(OptionsTest, DependentUsesAppearInBothTraceVariants)
{
    HeapConfig conf;
    conf.numCalls = 50;
    conf.fillerUopsPerGap = 20;
    conf.dependentUsesPerMalloc = 10;
    HeapWorkload wl(conf);
    auto base_ops = trace::collect(*wl.makeBaselineTrace());
    auto accel_ops = trace::collect(*wl.makeAcceleratedTrace());
    // Baseline has software sequences instead of accel uops; the
    // dependent-use uops (non-acceleratable) are identical in count.
    auto count_non_acc = [](const std::vector<trace::MicroOp> &ops) {
        uint64_t n = 0;
        for (const auto &op : ops)
            n += (!op.acceleratable && !op.isAccel()) ? 1 : 0;
        return n;
    };
    EXPECT_EQ(count_non_acc(base_ops), count_non_acc(accel_ops));
}

TEST(OptionsTest, PerClassCommitCountsSumToTotal)
{
    SyntheticConfig conf;
    conf.fillerUops = 8000;
    conf.numInvocations = 10;
    SyntheticWorkload wl(conf);
    mem::MemHierarchy hierarchy{mem::HierarchyConfig{}};
    cpu::Core core(cpu::a72CoreConfig(), hierarchy);
    auto trace = wl.makeBaselineTrace();
    cpu::SimResult r = core.run(*trace);

    uint64_t sum = 0;
    for (uint64_t c : r.committedByClass)
        sum += c;
    EXPECT_EQ(sum, r.committedUops);
    EXPECT_GT(r.committed(trace::OpClass::IntAlu), 0u);
    EXPECT_GT(r.committed(trace::OpClass::Load), 0u);
    EXPECT_EQ(r.committed(trace::OpClass::Accel), 0u);
}

TEST(OptionsTest, StringWorkloadRunsThroughExperiment)
{
    StringConfig conf;
    conf.numStrings = 24;
    conf.numCompares = 120;
    conf.fillerUopsPerGap = 80;
    StringWorkload wl(conf);
    ExperimentResult r = runExperiment(wl, cpu::a72CoreConfig());
    for (const ModeOutcome &mode : r.modes) {
        EXPECT_TRUE(mode.functionalOk) << tcaModeName(mode.mode);
        EXPECT_EQ(mode.sim.accelInvocations, 120u);
    }
}

} // namespace
} // namespace workloads
} // namespace tca
