/**
 * @file
 * Model-vs-simulator validation at test scale: miniature versions of
 * the paper's Section V experiments, asserting the *shape* results the
 * paper reports — the model tracks the simulator's mode ordering, and
 * errors stay within loose bands.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "model/validation.hh"
#include "workloads/experiment.hh"
#include "workloads/heap_workload.hh"
#include "workloads/synthetic.hh"

namespace tca {
namespace workloads {
namespace {

using model::TcaMode;

TEST(ValidationIntegrationTest, SyntheticModelTracksSimulator)
{
    // Moderate granularity, modest acceleration: the regime where the
    // paper reports <5% error. We assert a looser band plus correct
    // ordering, since our substrate is not gem5 itself.
    SyntheticConfig conf;
    conf.fillerUops = 60000;
    conf.numInvocations = 60;
    conf.regionUops = 300;
    conf.accelLatency = 60;
    SyntheticWorkload wl(conf);
    ExperimentResult r = runExperiment(wl, cpu::a72CoreConfig());

    for (const ModeOutcome &mode : r.modes) {
        EXPECT_LT(std::fabs(mode.errorPercent), 35.0)
            << tcaModeName(mode.mode) << ": modeled "
            << mode.modeledSpeedup << " vs measured "
            << mode.measuredSpeedup;
    }
}

TEST(ValidationIntegrationTest, ModelOrderingMatchesSimulator)
{
    SyntheticConfig conf;
    conf.fillerUops = 40000;
    conf.numInvocations = 80;
    conf.regionUops = 200;
    conf.accelLatency = 45;
    SyntheticWorkload wl(conf);
    ExperimentResult r = runExperiment(wl, cpu::a72CoreConfig());

    auto measured = [&](TcaMode m) {
        return r.forMode(m).measuredSpeedup;
    };
    auto modeled = [&](TcaMode m) {
        return r.forMode(m).modeledSpeedup;
    };
    // Both agree that full OoO support wins and NL_NT loses.
    EXPECT_GE(measured(TcaMode::L_T), measured(TcaMode::NL_NT));
    EXPECT_GE(modeled(TcaMode::L_T), modeled(TcaMode::NL_NT));
    EXPECT_GE(measured(TcaMode::L_T) + 1e-9,
              measured(TcaMode::L_NT));
    EXPECT_GE(measured(TcaMode::NL_T) + 1e-9,
              measured(TcaMode::NL_NT));
}

TEST(ValidationIntegrationTest, HeapErrorBandAndOrdering)
{
    HeapConfig conf;
    conf.numCalls = 500;
    conf.fillerUopsPerGap = 120;
    HeapWorkload wl(conf);
    ExperimentResult r = runExperiment(wl, cpu::a72CoreConfig());

    // The paper reports up to 8.5% heap error against gem5; against
    // our own substrate the non-L_T modes deviate more (the model is
    // pessimistic about drains, as the paper itself observes on
    // DGEMM, where errors reach 44%). Bound loosely.
    for (const ModeOutcome &mode : r.modes) {
        EXPECT_LT(std::fabs(mode.errorPercent), 100.0)
            << tcaModeName(mode.mode);
    }
    EXPECT_GE(r.forMode(TcaMode::L_T).measuredSpeedup,
              r.forMode(TcaMode::NL_NT).measuredSpeedup);
}

TEST(ValidationIntegrationTest, ErrorGrowsWithInvocationFrequency)
{
    // Fig. 5's observation: the model's absolute error tends to grow
    // as invocations become more frequent. Compare a sparse and a
    // dense heap workload; assert the dense one is not dramatically
    // *better* modeled (loose, shape-level claim).
    HeapConfig sparse;
    sparse.numCalls = 200;
    sparse.fillerUopsPerGap = 600;
    HeapConfig dense = sparse;
    dense.fillerUopsPerGap = 40;

    HeapWorkload ws(sparse), wd(dense);
    ExperimentResult rs = runExperiment(ws, cpu::a72CoreConfig());
    ExperimentResult rd = runExperiment(wd, cpu::a72CoreConfig());

    double err_sparse = 0.0, err_dense = 0.0;
    for (TcaMode mode : model::allTcaModes) {
        err_sparse += std::fabs(rs.forMode(mode).errorPercent);
        err_dense += std::fabs(rd.forMode(mode).errorPercent);
    }
    // Sparse invocations: the model should be decently accurate.
    EXPECT_LT(err_sparse / 4.0, 25.0);
    // No assertion that dense is worse in *every* run, just sanity.
    EXPECT_LT(err_dense / 4.0, 150.0);
    // The shape claim: error grows as invocations get denser.
    EXPECT_GT(err_dense, err_sparse);
}

TEST(ValidationIntegrationTest, SpeedupGrowsWithInvocationFrequency)
{
    // Fig. 5's headline: more frequent malloc/free calls -> larger
    // overall speedup from the heap TCA (in the OoO modes).
    HeapConfig sparse;
    sparse.numCalls = 150;
    sparse.fillerUopsPerGap = 800;
    HeapConfig dense = sparse;
    dense.fillerUopsPerGap = 60;

    HeapWorkload ws(sparse), wd(dense);
    ExperimentResult rs = runExperiment(ws, cpu::a72CoreConfig());
    ExperimentResult rd = runExperiment(wd, cpu::a72CoreConfig());

    EXPECT_GT(rd.forMode(TcaMode::L_T).measuredSpeedup,
              rs.forMode(TcaMode::L_T).measuredSpeedup);
}

} // namespace
} // namespace workloads
} // namespace tca
