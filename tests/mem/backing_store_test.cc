#include <gtest/gtest.h>

#include "mem/backing_store.hh"

namespace tca {
namespace mem {
namespace {

TEST(BackingStoreTest, UnwrittenReadsAsZero)
{
    BackingStore store;
    EXPECT_EQ(store.readValue<uint64_t>(0x1234), 0u);
    EXPECT_DOUBLE_EQ(store.readValue<double>(0x99999), 0.0);
}

TEST(BackingStoreTest, RoundTripsValues)
{
    BackingStore store;
    store.writeValue<uint64_t>(0x1000, 0xdeadbeefcafeULL);
    EXPECT_EQ(store.readValue<uint64_t>(0x1000), 0xdeadbeefcafeULL);
    store.writeValue<double>(0x2000, 3.25);
    EXPECT_DOUBLE_EQ(store.readValue<double>(0x2000), 3.25);
}

TEST(BackingStoreTest, CrossPageAccess)
{
    BackingStore store;
    // Write 16 bytes straddling a 4 KiB page boundary.
    uint8_t data[16];
    for (int i = 0; i < 16; ++i)
        data[i] = static_cast<uint8_t>(i + 1);
    store.write(4096 - 8, data, 16);
    uint8_t out[16] = {};
    store.read(4096 - 8, out, 16);
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(out[i], i + 1);
    EXPECT_EQ(store.numPages(), 2u);
}

TEST(BackingStoreTest, SparsePagesAllocatedLazily)
{
    BackingStore store;
    EXPECT_EQ(store.numPages(), 0u);
    store.writeValue<uint8_t>(0, 1);
    store.writeValue<uint8_t>(1 << 30, 2);
    EXPECT_EQ(store.numPages(), 2u);
}

TEST(BackingStoreTest, OverwriteReplaces)
{
    BackingStore store;
    store.writeValue<uint32_t>(0x100, 7);
    store.writeValue<uint32_t>(0x100, 9);
    EXPECT_EQ(store.readValue<uint32_t>(0x100), 9u);
}

TEST(BackingStoreTest, AdjacentValuesIndependent)
{
    BackingStore store;
    store.writeValue<double>(0x100, 1.5);
    store.writeValue<double>(0x108, 2.5);
    EXPECT_DOUBLE_EQ(store.readValue<double>(0x100), 1.5);
    EXPECT_DOUBLE_EQ(store.readValue<double>(0x108), 2.5);
}

} // namespace
} // namespace mem
} // namespace tca
