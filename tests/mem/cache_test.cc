#include <gtest/gtest.h>

#include "mem/cache.hh"

namespace tca {
namespace mem {
namespace {

/** Constant-latency backing level for isolating one cache. */
class FakeMem : public MemLevel
{
  public:
    explicit FakeMem(Cycle latency) : lat(latency) {}

    Cycle
    access(Addr addr, AccessType type, Cycle now) override
    {
        ++count;
        lastAddr = addr;
        lastType = type;
        return now + lat;
    }

    const char *name() const override { return "fake"; }

    Cycle lat;
    uint64_t count = 0;
    Addr lastAddr = 0;
    AccessType lastType = AccessType::Read;
};

CacheConfig
smallCache()
{
    CacheConfig conf;
    conf.name = "test_l1";
    conf.sizeBytes = 1024; // 16 lines
    conf.lineBytes = 64;
    conf.associativity = 2; // 8 sets
    conf.hitLatency = 2;
    conf.mshrs = 4;
    return conf;
}

TEST(CacheConfigTest, GeometryDerivation)
{
    CacheConfig conf = smallCache();
    EXPECT_EQ(conf.numSets(), 8u);
}

TEST(CacheConfigDeathTest, RejectsBadGeometry)
{
    CacheConfig conf = smallCache();
    conf.lineBytes = 48; // not a power of two
    EXPECT_EXIT(conf.validate(), testing::ExitedWithCode(1), "");
}

TEST(CacheTest, ColdMissThenHit)
{
    FakeMem backing(100);
    Cache cache(smallCache(), &backing);

    Cycle t1 = cache.access(0x1000, AccessType::Read, 0);
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(t1, 0 + 100 + 2); // fill then hit latency

    Cycle t2 = cache.access(0x1000, AccessType::Read, t1);
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(t2, t1 + 2);
}

TEST(CacheTest, SameLineDifferentOffsetHits)
{
    FakeMem backing(50);
    Cache cache(smallCache(), &backing);
    cache.access(0x1000, AccessType::Read, 0);
    cache.access(0x1038, AccessType::Read, 200);
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(cache.hits(), 1u);
}

TEST(CacheTest, LruEvictionOrder)
{
    FakeMem backing(10);
    CacheConfig conf = smallCache(); // 2-way, 8 sets
    Cache cache(conf, &backing);

    // Three lines mapping to the same set (stride = 64 * 8 = 512).
    cache.access(0x0000, AccessType::Read, 0);
    cache.access(0x0200, AccessType::Read, 100);
    // Touch the first line so 0x200 becomes LRU.
    cache.access(0x0000, AccessType::Read, 200);
    // Insert a third line: should evict 0x200, keep 0x0.
    cache.access(0x0400, AccessType::Read, 300);

    EXPECT_TRUE(cache.isResident(0x0000));
    EXPECT_FALSE(cache.isResident(0x0200));
    EXPECT_TRUE(cache.isResident(0x0400));
}

TEST(CacheTest, DirtyVictimWritesBack)
{
    FakeMem backing(10);
    Cache cache(smallCache(), &backing);

    cache.access(0x0000, AccessType::Write, 0); // miss + dirty
    cache.access(0x0200, AccessType::Read, 100);
    cache.access(0x0400, AccessType::Read, 200); // evicts dirty 0x0

    EXPECT_EQ(cache.writebacks(), 1u);
    EXPECT_EQ(backing.lastType, AccessType::Write);
    EXPECT_EQ(backing.lastAddr, 0x0000u);
}

TEST(CacheTest, CleanVictimSilentlyDropped)
{
    FakeMem backing(10);
    Cache cache(smallCache(), &backing);
    cache.access(0x0000, AccessType::Read, 0);
    cache.access(0x0200, AccessType::Read, 100);
    cache.access(0x0400, AccessType::Read, 200);
    EXPECT_EQ(cache.writebacks(), 0u);
}

TEST(CacheTest, MshrCoalescingSameLine)
{
    FakeMem backing(100);
    Cache cache(smallCache(), &backing);
    // Two accesses to the same missing line at the same time: one fill.
    Cycle t1 = cache.access(0x1000, AccessType::Read, 0);
    Cycle t2 = cache.access(0x1010, AccessType::Read, 1);
    EXPECT_EQ(backing.count, 1u);
    // Second access can't finish before the fill that feeds it.
    EXPECT_GE(t2, t1 - 2);
}

TEST(CacheTest, MshrExhaustionSerializes)
{
    FakeMem backing(100);
    CacheConfig conf = smallCache();
    conf.mshrs = 2;
    Cache cache(conf, &backing);

    // Three distinct-line misses at t=0; with 2 MSHRs the third must
    // wait for the earliest fill.
    cache.access(0x0000, AccessType::Read, 0);
    cache.access(0x1000, AccessType::Read, 0);
    Cycle t3 = cache.access(0x2000, AccessType::Read, 0);
    EXPECT_EQ(cache.mshrStalls(), 1u);
    EXPECT_GE(t3, 200u); // waited ~one fill (100) then its own fill
}

TEST(CacheTest, FlushInvalidatesEverything)
{
    FakeMem backing(10);
    Cache cache(smallCache(), &backing);
    cache.access(0x1000, AccessType::Read, 0);
    EXPECT_TRUE(cache.isResident(0x1000));
    cache.flush();
    EXPECT_FALSE(cache.isResident(0x1000));
}

TEST(CacheTest, MissRate)
{
    FakeMem backing(10);
    Cache cache(smallCache(), &backing);
    cache.access(0x1000, AccessType::Read, 0);   // miss
    cache.access(0x1000, AccessType::Read, 100); // hit
    cache.access(0x1000, AccessType::Read, 200); // hit
    cache.access(0x1000, AccessType::Read, 300); // hit
    EXPECT_DOUBLE_EQ(cache.missRate(), 0.25);
}

TEST(CacheTest, RandomReplacementStillCorrect)
{
    FakeMem backing(10);
    CacheConfig conf = smallCache();
    conf.policy = ReplPolicy::Random;
    Cache cache(conf, &backing);
    cache.access(0x0000, AccessType::Read, 0);
    cache.access(0x0200, AccessType::Read, 100);
    cache.access(0x0400, AccessType::Read, 200);
    // Two of the three conflicting lines remain resident.
    int resident = cache.isResident(0x0000) + cache.isResident(0x0200) +
                   cache.isResident(0x0400);
    EXPECT_EQ(resident, 2);
}

TEST(CacheTest, WorkingSetLargerThanCacheThrashes)
{
    FakeMem backing(10);
    Cache cache(smallCache(), &backing); // 1 KiB
    // Stream 64 distinct lines twice; 4 KiB working set cannot fit.
    for (int pass = 0; pass < 2; ++pass)
        for (Addr a = 0; a < 64 * 64; a += 64)
            cache.access(a, AccessType::Read, pass * 100000 + a);
    EXPECT_EQ(cache.misses(), 128u);
    EXPECT_EQ(cache.hits(), 0u);
}

TEST(CacheTest, L1ResidentBlockReusesLines)
{
    // The DGEMM blocking argument: a 24 KiB working set in a 32 KiB
    // cache has only cold misses.
    FakeMem backing(100);
    CacheConfig conf;
    conf.name = "l1";
    conf.sizeBytes = 32 * 1024;
    conf.lineBytes = 64;
    conf.associativity = 8;
    conf.hitLatency = 2;
    conf.mshrs = 8;
    Cache cache(conf, &backing);

    Cycle t = 0;
    for (int pass = 0; pass < 4; ++pass)
        for (Addr a = 0; a < 24 * 1024; a += 8)
            t = cache.access(a, AccessType::Read, t);
    uint64_t lines = 24 * 1024 / 64;
    EXPECT_EQ(cache.misses(), lines);
    EXPECT_EQ(cache.hits(), 4 * 24 * 1024 / 8 - lines);
}

} // namespace
} // namespace mem
} // namespace tca
