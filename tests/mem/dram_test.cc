#include <gtest/gtest.h>

#include "mem/dram.hh"

namespace tca {
namespace mem {
namespace {

TEST(DramTest, FixedLatency)
{
    DramConfig conf;
    conf.latency = 120;
    conf.channels = 1;
    conf.cyclesPerRequest = 4;
    Dram dram(conf);
    EXPECT_EQ(dram.access(0x1000, AccessType::Read, 10), 10u + 120u);
}

TEST(DramTest, ChannelOccupancyQueues)
{
    DramConfig conf;
    conf.latency = 100;
    conf.channels = 1;
    conf.cyclesPerRequest = 4;
    Dram dram(conf);
    Cycle t1 = dram.access(0x0000, AccessType::Read, 0);
    Cycle t2 = dram.access(0x0040, AccessType::Read, 0);
    Cycle t3 = dram.access(0x0080, AccessType::Read, 0);
    EXPECT_EQ(t1, 100u);
    EXPECT_EQ(t2, 104u); // queued behind request 1
    EXPECT_EQ(t3, 108u);
    EXPECT_EQ(dram.queuedRequests(), 2u);
}

TEST(DramTest, ChannelsInterleaveByLineAddress)
{
    DramConfig conf;
    conf.latency = 100;
    conf.channels = 2;
    conf.cyclesPerRequest = 4;
    Dram dram(conf);
    // Adjacent lines land on different channels: no queueing.
    Cycle t1 = dram.access(0x0000, AccessType::Read, 0);
    Cycle t2 = dram.access(0x0040, AccessType::Read, 0);
    EXPECT_EQ(t1, 100u);
    EXPECT_EQ(t2, 100u);
    EXPECT_EQ(dram.queuedRequests(), 0u);
}

TEST(DramTest, IdleChannelAcceptsImmediately)
{
    DramConfig conf;
    conf.latency = 50;
    conf.channels = 1;
    conf.cyclesPerRequest = 10;
    Dram dram(conf);
    dram.access(0x0000, AccessType::Read, 0);
    // Long after the occupancy window, no queueing.
    Cycle t = dram.access(0x0040, AccessType::Read, 1000);
    EXPECT_EQ(t, 1050u);
    EXPECT_EQ(dram.queuedRequests(), 0u);
}

TEST(DramTest, CountsRequests)
{
    Dram dram(DramConfig{});
    dram.access(0, AccessType::Read, 0);
    dram.access(64, AccessType::Write, 0);
    EXPECT_EQ(dram.requests(), 2u);
}

} // namespace
} // namespace mem
} // namespace tca
