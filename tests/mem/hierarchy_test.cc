#include <gtest/gtest.h>

#include <sstream>

#include "mem/hierarchy.hh"

namespace tca {
namespace mem {
namespace {

TEST(HierarchyTest, L1MissFillsFromL2ThenDram)
{
    HierarchyConfig conf;
    MemHierarchy mem(conf);

    // Cold: miss everywhere -> latency includes DRAM.
    Cycle t1 = mem.firstLevel().access(0x1000, AccessType::Read, 0);
    EXPECT_GE(t1, conf.dram.latency);
    EXPECT_EQ(mem.l1d().misses(), 1u);
    EXPECT_EQ(mem.l2()->misses(), 1u);

    // Warm: L1 hit at hit latency.
    Cycle t2 = mem.firstLevel().access(0x1000, AccessType::Read, t1);
    EXPECT_EQ(t2, t1 + conf.l1d.hitLatency);
}

TEST(HierarchyTest, L2HitFasterThanDram)
{
    HierarchyConfig conf;
    MemHierarchy mem(conf);
    mem.firstLevel().access(0x1000, AccessType::Read, 0);
    // Evict from tiny L1? Instead, access a line that now sits in L2
    // but conflicts out of L1: simpler to flush only L1 by streaming.
    // Touch enough lines to evict 0x1000 from L1 but not 512KiB L2.
    Cycle t = 1000;
    for (Addr a = 0x100000; a < 0x100000 + 64 * 1024; a += 64)
        t = mem.firstLevel().access(a, AccessType::Read, t);
    ASSERT_FALSE(mem.l1d().isResident(0x1000));

    uint64_t dram_before = mem.dram().requests();
    Cycle start = t + 1000;
    Cycle done = mem.firstLevel().access(0x1000, AccessType::Read,
                                         start);
    // Served from L2: no new DRAM request, much faster than DRAM.
    EXPECT_EQ(mem.dram().requests(), dram_before);
    EXPECT_LT(done - start, conf.dram.latency);
}

TEST(HierarchyTest, NoL2Configuration)
{
    HierarchyConfig conf;
    conf.enableL2 = false;
    MemHierarchy mem(conf);
    EXPECT_EQ(mem.l2(), nullptr);
    uint64_t before = mem.dram().requests();
    mem.firstLevel().access(0x1000, AccessType::Read, 0);
    EXPECT_EQ(mem.dram().requests(), before + 1);
}

TEST(HierarchyTest, FlushColdsTheCaches)
{
    MemHierarchy mem{HierarchyConfig{}};
    mem.firstLevel().access(0x1000, AccessType::Read, 0);
    mem.flush();
    EXPECT_FALSE(mem.l1d().isResident(0x1000));
    mem.firstLevel().access(0x1000, AccessType::Read, 1000);
    EXPECT_EQ(mem.l1d().misses(), 2u);
}

TEST(HierarchyTest, StatsRegistration)
{
    MemHierarchy mem{HierarchyConfig{}};
    mem.firstLevel().access(0x1000, AccessType::Read, 0);
    stats::Group group("mem");
    mem.regStats(group);
    std::ostringstream os;
    group.dump(os);
    std::string out = os.str();
    EXPECT_NE(out.find("l1d.misses 1"), std::string::npos);
    EXPECT_NE(out.find("dram.requests"), std::string::npos);
}

} // namespace
} // namespace mem
} // namespace tca
