#include <gtest/gtest.h>

#include "mem/prefetcher.hh"

namespace tca {
namespace mem {
namespace {

TEST(PrefetcherTest, DetectsUnitStride)
{
    Prefetcher pf(64);
    Addr out = 0;
    EXPECT_FALSE(pf.observe(0x0000, true, out)); // first miss
    EXPECT_FALSE(pf.observe(0x0040, true, out)); // stride learned
    ASSERT_TRUE(pf.observe(0x0080, true, out));  // stride confirmed
    EXPECT_EQ(out, 0x00c0u);
}

TEST(PrefetcherTest, DetectsLargeStride)
{
    Prefetcher pf(64);
    Addr out = 0;
    pf.observe(0x0000, true, out);
    pf.observe(0x1000, true, out);
    ASSERT_TRUE(pf.observe(0x2000, true, out));
    EXPECT_EQ(out, 0x3000u);
}

TEST(PrefetcherTest, IgnoresHits)
{
    Prefetcher pf(64);
    Addr out = 0;
    pf.observe(0x0000, true, out);
    pf.observe(0x0040, true, out);
    EXPECT_FALSE(pf.observe(0x0080, false, out));
}

TEST(PrefetcherTest, RandomPatternNoPrefetch)
{
    Prefetcher pf(64);
    Addr out = 0;
    EXPECT_FALSE(pf.observe(0x0000, true, out));
    EXPECT_FALSE(pf.observe(0x5000, true, out));
    EXPECT_FALSE(pf.observe(0x0040, true, out));
    EXPECT_FALSE(pf.observe(0x9000, true, out));
}

TEST(PrefetcherTest, DegreeScalesDistance)
{
    Prefetcher pf(64, 4);
    Addr out = 0;
    pf.observe(0x0000, true, out);
    pf.observe(0x0040, true, out);
    ASSERT_TRUE(pf.observe(0x0080, true, out));
    EXPECT_EQ(out, 0x0080u + 4u * 0x40u);
}

} // namespace
} // namespace mem
} // namespace tca
