/**
 * @file
 * The L_T_async equation in isolation: the t_queue M/D/1-style term,
 * its occupancy estimate, the degenerate-parameter guards, and the
 * mode's place in sweeps, reports, and the text surfaces.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "model/interval_model.hh"
#include "model/report.hh"
#include "model/sweeps.hh"

namespace tca {
namespace model {
namespace {

TcaParams
baseParams()
{
    TcaParams p = armA72Preset().apply(TcaParams{});
    p.accelerationFactor = 3.0;
    return p.withAcceleratable(0.4).withGranularity(2000.0);
}

TEST(AsyncModelTest, AsyncTimeIsOverlapPlusQueueTerm)
{
    IntervalModel m(baseParams());
    const IntervalTimes &t = m.times();
    EXPECT_DOUBLE_EQ(t.time(TcaMode::L_T_async),
                     std::max(t.nonAccl, t.accl) + t.queue);
    EXPECT_GE(t.queue, 0.0);
}

TEST(AsyncModelTest, QueueRhoIsServiceOverInterArrival)
{
    IntervalModel m(baseParams());
    const IntervalTimes &t = m.times();
    EXPECT_DOUBLE_EQ(t.queueRho, t.accl / t.nonAccl);
}

TEST(AsyncModelTest, OccupancyEstimateBoundedByDepth)
{
    for (uint32_t depth : {1u, 2u, 4u, 8u}) {
        // Saturate the device: acceleratable work dominates, so rho is
        // far above 1 and the estimate must clamp at the depth.
        TcaParams p = baseParams().withAcceleratable(0.95);
        p.accelerationFactor = 1.01;
        p.accelQueueDepth = depth;
        IntervalModel m(p);
        EXPECT_LE(m.times().queueOccupancy, double(depth));
        EXPECT_GE(m.times().queueOccupancy, 0.0);
    }
}

TEST(AsyncModelTest, QueueTermVanishesWhenStreamsImbalance)
{
    // When either side dominates heavily the queue is almost never
    // full: min(rho, 1/rho)^d collapses and t_queue -> 0.
    TcaParams host_bound = baseParams().withAcceleratable(0.05);
    TcaParams dev_bound = baseParams().withAcceleratable(0.98);
    dev_bound.accelerationFactor = 1.001;
    for (const TcaParams &p : {host_bound, dev_bound}) {
        IntervalModel m(p);
        const IntervalTimes &t = m.times();
        EXPECT_LT(t.queue, 0.05 * t.accl)
            << "rho " << t.queueRho;
    }
}

TEST(AsyncModelTest, BalancedStreamsPayTheLargestQueueTerm)
{
    // t_queue peaks where host and device are balanced (rho = 1) and
    // falls off on both sides.
    auto queue_at = [](double a) {
        TcaParams p = baseParams().withAcceleratable(a);
        // Keep t_accl equal to a * baseline / 1 so rho sweeps through
        // 1 as a crosses 0.5.
        p.accelerationFactor = 1.0;
        return IntervalModel(p).times().queue;
    };
    double balanced = queue_at(0.5);
    EXPECT_GT(balanced, queue_at(0.1));
    EXPECT_GT(balanced, queue_at(0.9));
}

TEST(AsyncModelTest, DegenerateParamsKeepAsyncFinite)
{
    // All-acceleratable and barely-acceleratable corners must not
    // divide by zero or go non-finite.
    for (double a : {1e-9, 0.999999}) {
        TcaParams p = baseParams().withAcceleratable(a);
        IntervalModel m(p);
        double s = m.speedup(TcaMode::L_T_async);
        EXPECT_TRUE(std::isfinite(s)) << "a = " << a;
        EXPECT_GT(s, 0.0) << "a = " << a;
    }
}

TEST(AsyncModelTest, AsyncDominatesEverySyncModeAcrossTheSweep)
{
    // Fire-and-forget overlap plus a non-negative queue term: the
    // async time can exceed max(nonAccl, accl) only by t_queue, which
    // is at most accl/2 — never enough to fall behind L_T's
    // max(nonAccl + robFull, accl) by more than rounding.
    TcaParams base = baseParams();
    std::vector<SweepPoint> sweep =
        granularitySweep(base, 10.0, 1e6, 25);
    ASSERT_FALSE(sweep.empty());
    size_t async_idx = static_cast<size_t>(TcaMode::L_T_async);
    size_t lt_idx = static_cast<size_t>(TcaMode::L_T);
    for (const SweepPoint &point : sweep) {
        EXPECT_GE(point.speedup[async_idx] + 1e-9,
                  point.speedup[lt_idx])
            << "granularity " << point.x;
    }
}

TEST(AsyncModelTest, DesignReportListsTheFifthMode)
{
    std::string text = designReport(baseParams());
    EXPECT_NE(text.find("L_T_async"), std::string::npos);
}

TEST(AsyncModelTest, DescribeCarriesQueueBreakdown)
{
    std::string text = IntervalModel(baseParams()).describe();
    EXPECT_NE(text.find("L_T_async"), std::string::npos);
}

} // namespace
} // namespace model
} // namespace tca
