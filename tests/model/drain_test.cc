#include <gtest/gtest.h>

#include "model/drain.hh"

namespace tca {
namespace model {
namespace {

TEST(DrainModelTest, CalibratedPointObeysLittlesLaw)
{
    // At the calibrated window size the drain time is s_ROB / IPC
    // regardless of beta.
    for (double beta : {1.0, 1.5, 2.0, 3.0}) {
        DrainModel drain(128, 1.6, beta);
        EXPECT_NEAR(drain.drainTime(), 128.0 / 1.6, 1e-9);
        EXPECT_NEAR(drain.drainTimeForWindow(128.0), 128.0 / 1.6, 1e-9);
    }
}

TEST(DrainModelTest, PowerLawExtrapolationMonotonic)
{
    DrainModel drain(128, 1.5, 2.0);
    double d64 = drain.drainTimeForWindow(64);
    double d128 = drain.drainTimeForWindow(128);
    double d256 = drain.drainTimeForWindow(256);
    EXPECT_LT(d64, d128);
    EXPECT_LT(d128, d256);
}

TEST(DrainModelTest, PowerLawExponentTwoIsSqrtScaling)
{
    // With W = alpha * l^2, quadrupling the window doubles the drain.
    DrainModel drain(128, 2.0, 2.0);
    double d = drain.drainTimeForWindow(128);
    EXPECT_NEAR(drain.drainTimeForWindow(512), 2.0 * d, 1e-9);
}

TEST(DrainModelTest, BetaOneIsLinearScaling)
{
    DrainModel drain(100, 2.0, 1.0);
    EXPECT_NEAR(drain.drainTimeForWindow(200),
                2.0 * drain.drainTimeForWindow(100), 1e-9);
}

TEST(DrainModelTest, ZeroWindowDrainsInstantly)
{
    DrainModel drain(128, 1.5);
    EXPECT_DOUBLE_EQ(drain.drainTimeForWindow(0.0), 0.0);
}

TEST(DrainModelTest, HigherIpcDrainsFaster)
{
    DrainModel slow(128, 0.5);
    DrainModel fast(128, 2.0);
    EXPECT_GT(slow.drainTime(), fast.drainTime());
}

TEST(DrainModelTest, AlphaSolvedConsistently)
{
    DrainModel drain(128, 1.6, 2.0);
    // W = alpha * l^beta must hold at the calibration point.
    double l = drain.drainTime();
    EXPECT_NEAR(drain.powerLawAlpha() * l * l, 128.0, 1e-6);
}

} // namespace
} // namespace model
} // namespace tca
