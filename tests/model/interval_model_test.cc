#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "model/interval_model.hh"

namespace tca {
namespace model {
namespace {

/** Reference parameters with a modest drain so every term is active. */
TcaParams
refParams()
{
    TcaParams p;
    p.acceleratableFraction = 0.3;
    p.invocationFrequency = 1e-3;
    p.ipc = 1.5;
    p.accelerationFactor = 3.0;
    p.robSize = 128;
    p.issueWidth = 3;
    p.commitStall = 10.0;
    return p;
}

TEST(IntervalModelTest, BaselineTimesMatchEquations)
{
    TcaParams p = refParams();
    IntervalModel m(p);
    const IntervalTimes &t = m.times();
    // eq (1)-(3)
    EXPECT_NEAR(t.baseline, 1.0 / (1e-3 * 1.5), 1e-9);
    EXPECT_NEAR(t.accl, 0.3 / (1e-3 * 3.0 * 1.5), 1e-9);
    EXPECT_NEAR(t.nonAccl, 0.7 / (1e-3 * 1.5), 1e-9);
    EXPECT_NEAR(t.robFill, 128.0 / 3.0, 1e-9);
}

TEST(IntervalModelTest, DrainDefaultsToLittlesLawAndClamps)
{
    TcaParams p = refParams();
    IntervalModel m(p);
    EXPECT_NEAR(m.times().drainRaw, 128.0 / 1.5, 1e-9);
    // nonAccl = 466.7 > drainRaw = 85.3, so no clamp here.
    EXPECT_NEAR(m.times().drain, m.times().drainRaw, 1e-9);

    // Very frequent invocations: interval shorter than the drain.
    TcaParams q = p.withInvocationFrequency(0.05);
    IntervalModel m2(q);
    EXPECT_NEAR(m2.times().drain, m2.times().nonAccl, 1e-9);
    EXPECT_LT(m2.times().drain, m2.times().drainRaw);
}

TEST(IntervalModelTest, ExplicitDrainOverride)
{
    TcaParams p = refParams();
    p.explicitDrainTime = 12.5;
    IntervalModel m(p);
    EXPECT_DOUBLE_EQ(m.times().drainRaw, 12.5);
}

TEST(IntervalModelTest, EquationFourNlNt)
{
    TcaParams p = refParams();
    IntervalModel m(p);
    const IntervalTimes &t = m.times();
    EXPECT_NEAR(m.intervalTime(TcaMode::NL_NT),
                t.nonAccl + t.accl + t.drain + 2.0 * t.commit, 1e-9);
}

TEST(IntervalModelTest, EquationFiveLNt)
{
    TcaParams p = refParams();
    IntervalModel m(p);
    const IntervalTimes &t = m.times();
    EXPECT_NEAR(m.intervalTime(TcaMode::L_NT),
                t.nonAccl + t.accl + t.commit, 1e-9);
}

TEST(IntervalModelTest, EquationSevenNlT)
{
    TcaParams p = refParams();
    IntervalModel m(p);
    const IntervalTimes &t = m.times();
    double expected = std::max(t.nonAccl + t.nlRobFull,
                               t.accl + t.drain + t.commit);
    EXPECT_NEAR(m.intervalTime(TcaMode::NL_T), expected, 1e-9);
}

TEST(IntervalModelTest, EquationNineLT)
{
    TcaParams p = refParams();
    IntervalModel m(p);
    const IntervalTimes &t = m.times();
    EXPECT_NEAR(m.intervalTime(TcaMode::L_T),
                std::max(t.nonAccl + t.ltRobFull, t.accl), 1e-9);
}

TEST(IntervalModelTest, RobFullTermsNonNegativeAndOrdered)
{
    TcaParams p = refParams();
    IntervalModel m(p);
    EXPECT_GE(m.times().nlRobFull, 0.0);
    EXPECT_GE(m.times().ltRobFull, 0.0);
    // The NL fill penalty includes the drain and commit on top of the
    // accelerator time, so it is never smaller than the L_T one.
    EXPECT_GE(m.times().nlRobFull, m.times().ltRobFull);
}

TEST(IntervalModelTest, ModePerformanceOrdering)
{
    // More OoO support never hurts: L_T >= NL_T and L_T >= L_NT >=
    // NL_NT, across a broad parameter sweep.
    for (double a : {0.05, 0.3, 0.6, 0.9}) {
        for (double g : {20.0, 200.0, 2000.0, 2e6}) {
            for (double A : {1.5, 3.0, 10.0}) {
                TcaParams p = refParams()
                                  .withAcceleratable(a)
                                  .withAccelerationFactor(A)
                                  .withGranularity(g);
                IntervalModel m(p);
                double lt = m.speedup(TcaMode::L_T);
                double nlt = m.speedup(TcaMode::NL_T);
                double lnt = m.speedup(TcaMode::L_NT);
                double nlnt = m.speedup(TcaMode::NL_NT);
                EXPECT_GE(lt, nlt - 1e-12) << "a=" << a << " g=" << g;
                EXPECT_GE(lt, lnt - 1e-12) << "a=" << a << " g=" << g;
                EXPECT_GE(lnt, nlnt - 1e-12) << "a=" << a << " g=" << g;
                EXPECT_GE(nlt, nlnt - 1e-12) << "a=" << a << " g=" << g;
            }
        }
    }
}

TEST(IntervalModelTest, CoarseGrainedModesConverge)
{
    // At very coarse granularity the four synchronous modes approach
    // the same speedup (left side of Fig. 2). L_T_async stays ahead:
    // its enqueue-ack early retire overlaps the whole device time with
    // the non-accelerated stream regardless of granularity.
    TcaParams p = refParams().withGranularity(1e9);
    IntervalModel m(p);
    auto s = m.allSpeedups();
    double lo = *std::min_element(s.begin(), s.begin() + 4);
    double hi = *std::max_element(s.begin(), s.begin() + 4);
    EXPECT_NEAR(hi / lo, 1.0, 1e-3);
    EXPECT_GE(s[4], hi - 1e-12); // allTcaModes[4] == L_T_async
}

TEST(IntervalModelTest, FineGrainedNlNtSlowsDown)
{
    // The headline motivation: at fine granularity, NL_NT causes
    // program slowdown (right side of Fig. 2).
    TcaParams p = refParams().withGranularity(30.0);
    IntervalModel m(p);
    EXPECT_LT(m.speedup(TcaMode::NL_NT), 1.0);
    EXPECT_TRUE(m.predictsSlowdown(TcaMode::NL_NT));
    // While full OoO support still speeds up.
    EXPECT_GT(m.speedup(TcaMode::L_T), 1.0);
}

TEST(IntervalModelTest, SpeedupIsBaselineOverModeTime)
{
    TcaParams p = refParams();
    IntervalModel m(p);
    for (TcaMode mode : allTcaModes) {
        EXPECT_NEAR(m.speedup(mode),
                    m.times().baseline / m.intervalTime(mode), 1e-12);
    }
}

TEST(IntervalModelTest, LtRobFullKicksInForLongAccelerators)
{
    // An accelerator whose execution outlasts the ROB fill stalls even
    // the L_T front end (eq. 8).
    TcaParams p = refParams();
    p.acceleratableFraction = 0.98;
    p.accelerationFactor = 1.1; // slow accelerator, long t_accl
    p.invocationFrequency = 1e-4;
    IntervalModel m(p);
    EXPECT_GT(m.times().ltRobFull, 0.0);
}

TEST(IntervalModelTest, DescribeMentionsAllModes)
{
    IntervalModel m(refParams());
    std::string text = m.describe();
    for (TcaMode mode : allTcaModes)
        EXPECT_NE(text.find(tcaModeName(mode)), std::string::npos);
}

struct GridCase
{
    double a, g, A;
};

class IntervalModelPropertyTest
    : public testing::TestWithParam<GridCase>
{};

TEST_P(IntervalModelPropertyTest, SpeedupsFiniteAndPositive)
{
    GridCase c = GetParam();
    TcaParams p = refParams()
                      .withAcceleratable(c.a)
                      .withAccelerationFactor(c.A)
                      .withGranularity(c.g);
    IntervalModel m(p);
    for (TcaMode mode : allTcaModes) {
        double s = m.speedup(mode);
        EXPECT_TRUE(std::isfinite(s));
        EXPECT_GT(s, 0.0);
        // Speedup can never exceed the concurrency bound A + 1.
        EXPECT_LE(s, c.A + 1.0 + 1e-9);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, IntervalModelPropertyTest,
    testing::Values(GridCase{0.01, 10.0, 2.0}, GridCase{0.1, 50.0, 1.2},
                    GridCase{0.3, 300.0, 3.0}, GridCase{0.5, 1e4, 5.0},
                    GridCase{0.7, 1e5, 10.0}, GridCase{0.9, 1e7, 2.0},
                    GridCase{0.99, 1e8, 50.0},
                    GridCase{0.25, 25.0, 1.01}));

} // namespace
} // namespace model
} // namespace tca
