#include <gtest/gtest.h>

#include "model/interval_model.hh"
#include "model/inverse.hh"

namespace tca {
namespace model {
namespace {

TcaParams
refParams()
{
    TcaParams p = armA72Preset().apply(TcaParams{});
    p.acceleratableFraction = 0.3;
    p.accelerationFactor = 3.0;
    return p;
}

TEST(InverseTest, BreakEvenGranularityBracketsSlowdown)
{
    TcaParams p = refParams();
    auto g = breakEvenGranularity(p, TcaMode::NL_NT);
    ASSERT_TRUE(g.has_value());
    // Just below break-even: slowdown; at break-even: speedup.
    EXPECT_LT(IntervalModel(p.withGranularity(*g * 0.9))
                  .speedup(TcaMode::NL_NT), 1.0);
    EXPECT_GE(IntervalModel(p.withGranularity(*g))
                  .speedup(TcaMode::NL_NT), 1.0 - 1e-9);
}

TEST(InverseTest, LtHasNoBreakEven)
{
    // L_T with A > 1 never slows the program down, so there is no
    // break-even point.
    EXPECT_FALSE(
        breakEvenGranularity(refParams(), TcaMode::L_T).has_value());
}

TEST(InverseTest, WeakerModesBreakEvenAtCoarserGranularity)
{
    TcaParams p = refParams();
    auto g_nlnt = breakEvenGranularity(p, TcaMode::NL_NT);
    auto g_lnt = breakEvenGranularity(p, TcaMode::L_NT);
    ASSERT_TRUE(g_nlnt.has_value());
    if (g_lnt.has_value()) {
        EXPECT_GT(*g_nlnt, *g_lnt);
    }
}

TEST(InverseTest, SpeedupCeilingIsAmdahlBoundForLNt)
{
    // For L_NT with t_accl -> 0: t = t_non_accl + t_commit, so the
    // ceiling is baseline / (nonAccl + commit).
    TcaParams p = refParams();
    IntervalModel m(p);
    double expected = m.times().baseline /
                      (m.times().nonAccl + m.times().commit);
    EXPECT_NEAR(speedupCeiling(p, TcaMode::L_NT), expected, 1e-6);
}

TEST(InverseTest, RequiredFactorAchievesTarget)
{
    TcaParams p = refParams().withGranularity(5000.0);
    auto A = requiredAccelerationFactor(p, TcaMode::L_T, 1.3);
    ASSERT_TRUE(A.has_value());
    EXPECT_GE(IntervalModel(p.withAccelerationFactor(*A))
                  .speedup(TcaMode::L_T), 1.3 - 1e-6);
    // And it is minimal: slightly less misses the target.
    EXPECT_LT(IntervalModel(p.withAccelerationFactor(*A * 0.98))
                  .speedup(TcaMode::L_T), 1.3);
}

TEST(InverseTest, UnreachableTargetReturnsNullopt)
{
    // a = 0.3: even infinite acceleration caps at ~1/(1-a) = 1.43.
    TcaParams p = refParams().withGranularity(5000.0);
    EXPECT_FALSE(
        requiredAccelerationFactor(p, TcaMode::L_T, 5.0).has_value());
}

TEST(InverseTest, CeilingOrderedByModeStrength)
{
    TcaParams p = refParams().withGranularity(300.0);
    EXPECT_GE(speedupCeiling(p, TcaMode::L_T),
              speedupCeiling(p, TcaMode::L_NT));
    EXPECT_GE(speedupCeiling(p, TcaMode::L_NT),
              speedupCeiling(p, TcaMode::NL_NT));
}

TEST(InverseTest, HigherCoverageNeedsSmallerFactor)
{
    TcaParams lo = refParams().withAcceleratable(0.3)
                       .withGranularity(5000.0);
    TcaParams hi = refParams().withAcceleratable(0.6)
                       .withGranularity(5000.0);
    auto a_lo = requiredAccelerationFactor(lo, TcaMode::L_T, 1.25);
    auto a_hi = requiredAccelerationFactor(hi, TcaMode::L_T, 1.25);
    ASSERT_TRUE(a_lo.has_value());
    ASSERT_TRUE(a_hi.has_value());
    EXPECT_LT(*a_hi, *a_lo);
}

} // namespace
} // namespace model
} // namespace tca
