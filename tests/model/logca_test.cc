#include <gtest/gtest.h>

#include "model/interval_model.hh"
#include "model/logca.hh"

namespace tca {
namespace model {
namespace {

LogCaParams
refLogCa()
{
    LogCaParams p;
    p.o = 200.0;
    p.L = 0.05;
    p.C = 1.0;
    p.beta = 1.0;
    p.A = 8.0;
    return p;
}

TEST(LogCaTest, HostTimeFollowsComplexity)
{
    LogCaParams p = refLogCa();
    EXPECT_DOUBLE_EQ(logcaHostTime(p, 100.0), 100.0);
    p.beta = 2.0;
    EXPECT_DOUBLE_EQ(logcaHostTime(p, 100.0), 10000.0);
}

TEST(LogCaTest, SmallOffloadsLoseToOverhead)
{
    LogCaParams p = refLogCa();
    // g = 10: host 10 cycles vs o = 200 -> big slowdown.
    EXPECT_LT(logcaRegionSpeedup(p, 10.0), 0.1);
}

TEST(LogCaTest, LargeOffloadsApproachAsymptote)
{
    LogCaParams p = refLogCa();
    double limit = logcaAsymptoticSpeedup(p);
    EXPECT_NEAR(logcaRegionSpeedup(p, 1e9), limit, 0.01 * limit);
    // With a transfer term and beta=1 the cap is below A.
    EXPECT_LT(limit, p.A);
    // Superlinear compute hides the transfer: cap becomes A.
    p.beta = 1.5;
    EXPECT_DOUBLE_EQ(logcaAsymptoticSpeedup(p), p.A);
}

TEST(LogCaTest, SpeedupMonotonicInGranularity)
{
    LogCaParams p = refLogCa();
    double prev = 0.0;
    for (double g : {10.0, 100.0, 1e3, 1e5, 1e7}) {
        double s = logcaRegionSpeedup(p, g);
        EXPECT_GT(s, prev);
        prev = s;
    }
}

TEST(LogCaTest, BreakEvenBracketsUnity)
{
    LogCaParams p = refLogCa();
    auto g1 = logcaBreakEvenGranularity(p);
    ASSERT_TRUE(g1.has_value());
    EXPECT_LT(logcaRegionSpeedup(p, *g1 * 0.9), 1.0);
    EXPECT_GE(logcaRegionSpeedup(p, *g1), 1.0 - 1e-9);
}

TEST(LogCaTest, NoBreakEvenForUselessAccelerator)
{
    LogCaParams p = refLogCa();
    p.A = 1.0;
    p.L = 1.0; // transfer costs as much as computing
    EXPECT_FALSE(logcaBreakEvenGranularity(p).has_value());
}

TEST(LogCaTest, ProgramSpeedupAmdahlBounded)
{
    LogCaParams p = refLogCa();
    double s = logcaProgramSpeedup(p, 1e6, 0.5);
    EXPECT_LT(s, 2.0); // idle CPU: at most 1/(1-a)
    EXPECT_GT(s, 1.5);
}

TEST(LogCaTest, DivergesFromTcaModelAtFineGranularity)
{
    // The paper's core criticism: LogCA has one curve; the TCA model
    // resolves modes. Calibrate both to the same coarse-grained
    // behaviour, then look at fine granularity.
    LogCaParams logca = refLogCa();
    logca.o = 50.0;

    TcaParams tca = armA72Preset().apply(TcaParams{});
    tca.acceleratableFraction = 0.5;
    tca.accelerationFactor = 8.0;

    // Coarse: both predict substantial, comparable program speedup.
    double coarse_logca = logcaProgramSpeedup(logca, 1e7, 0.5);
    IntervalModel coarse_tca(tca.withGranularity(1e7));
    EXPECT_GT(coarse_logca, 1.5);
    EXPECT_GT(coarse_tca.speedup(TcaMode::NL_NT), 1.5);

    // Fine (g=50): the TCA model separates a >1x L_T from a <1x
    // NL_NT; LogCA necessarily reports a single number and, with its
    // offload overhead, predicts deep slowdown even for the design
    // that full OoO integration would save.
    IntervalModel fine_tca(tca.withGranularity(50.0));
    double fine_logca = logcaProgramSpeedup(logca, 50.0, 0.5);
    EXPECT_GT(fine_tca.speedup(TcaMode::L_T), 1.0);
    EXPECT_LT(fine_tca.speedup(TcaMode::NL_NT), 1.0);
    EXPECT_LT(fine_logca, fine_tca.speedup(TcaMode::L_T));
}

TEST(LogCaDeathTest, RejectsBadParameters)
{
    LogCaParams p = refLogCa();
    p.beta = 0.5;
    EXPECT_EXIT(p.validate(), testing::ExitedWithCode(1), "");
    LogCaParams q = refLogCa();
    q.A = 0.0;
    EXPECT_EXIT(q.validate(), testing::ExitedWithCode(1), "");
}

} // namespace
} // namespace model
} // namespace tca
