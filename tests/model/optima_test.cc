#include <gtest/gtest.h>

#include "model/interval_model.hh"
#include "model/optima.hh"

namespace tca {
namespace model {
namespace {

TcaParams
cleanParams()
{
    // Negligible commit stall and drain so the closed-form optimum is
    // approached tightly.
    TcaParams p;
    p.ipc = 1.5;
    p.robSize = 256;
    p.issueWidth = 4;
    p.commitStall = 0.0;
    p.explicitDrainTime = 0.0;
    return p;
}

TEST(OptimaTest, ClosedFormBound)
{
    EXPECT_DOUBLE_EQ(ltSpeedupBound(2.0), 3.0);
    EXPECT_DOUBLE_EQ(ltSpeedupBound(5.0), 6.0);
    EXPECT_NEAR(ltOptimalAcceleratable(2.0), 2.0 / 3.0, 1e-12);
    EXPECT_NEAR(ltOptimalAcceleratable(5.0), 5.0 / 6.0, 1e-12);
}

TEST(OptimaTest, Fig8PeakAtTwoThirdsForAEqualTwo)
{
    // Section VII: a TCA with A=2 peaks at speedup 3 when 67% of the
    // code is acceleratable.
    TcaParams p = cleanParams().withAccelerationFactor(2.0);
    SpeedupPeak peak = findPeakSpeedup(p, 100.0, TcaMode::L_T);
    EXPECT_NEAR(peak.bestA, 2.0 / 3.0, 0.02);
    EXPECT_NEAR(peak.bestSpeedup, 3.0, 0.05);
}

TEST(OptimaTest, PeakForAFiveAtFiveSixths)
{
    TcaParams p = cleanParams().withAccelerationFactor(5.0);
    SpeedupPeak peak = findPeakSpeedup(p, 500.0, TcaMode::L_T);
    EXPECT_NEAR(peak.bestA, 5.0 / 6.0, 0.02);
    EXPECT_NEAR(peak.bestSpeedup, 6.0, 0.1);
}

TEST(OptimaTest, BarrierModesPeakLower)
{
    // Dispatch stalls forfeit the extra concurrency (Section VII).
    TcaParams p = cleanParams().withAccelerationFactor(2.0);
    p.commitStall = 10.0;
    p.explicitDrainTime = -1.0; // estimated drain
    SpeedupPeak lt = findPeakSpeedup(p, 100.0, TcaMode::L_T);
    SpeedupPeak lnt = findPeakSpeedup(p, 100.0, TcaMode::L_NT);
    SpeedupPeak nlnt = findPeakSpeedup(p, 100.0, TcaMode::NL_NT);
    EXPECT_GT(lt.bestSpeedup, lnt.bestSpeedup);
    EXPECT_GE(lnt.bestSpeedup, nlnt.bestSpeedup);
}

TEST(OptimaTest, PeakNeverExceedsBound)
{
    for (double A : {1.2, 2.0, 4.0, 8.0}) {
        TcaParams p = cleanParams().withAccelerationFactor(A);
        SpeedupPeak peak = findPeakSpeedup(p, 200.0, TcaMode::L_T);
        EXPECT_LE(peak.bestSpeedup, ltSpeedupBound(A) + 1e-6);
    }
}

TEST(OptimaTest, PeakSpeedupAtLeastEndpointValues)
{
    TcaParams p = cleanParams().withAccelerationFactor(3.0);
    SpeedupPeak peak = findPeakSpeedup(p, 100.0, TcaMode::NL_T);
    for (double a : {0.01, 0.5, 0.99}) {
        TcaParams q = p.withAcceleratable(a).withGranularity(100.0);
        EXPECT_GE(peak.bestSpeedup + 1e-9,
                  IntervalModel(q).speedup(TcaMode::NL_T));
    }
}

} // namespace
} // namespace model
} // namespace tca
