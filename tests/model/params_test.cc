#include <gtest/gtest.h>

#include "model/params.hh"

namespace tca {
namespace model {
namespace {

TEST(TcaParamsTest, GranularityIsAOverV)
{
    TcaParams p;
    p.acceleratableFraction = 0.3;
    p.invocationFrequency = 1e-3;
    EXPECT_DOUBLE_EQ(p.granularity(), 300.0);
}

TEST(TcaParamsTest, WithGranularityRoundTrips)
{
    TcaParams p;
    p.acceleratableFraction = 0.5;
    TcaParams q = p.withGranularity(1000.0);
    EXPECT_DOUBLE_EQ(q.granularity(), 1000.0);
    EXPECT_DOUBLE_EQ(q.invocationFrequency, 0.5 / 1000.0);
}

TEST(TcaParamsTest, BuildersPreserveOtherFields)
{
    TcaParams p;
    p.ipc = 1.7;
    p.robSize = 192;
    TcaParams q = p.withAcceleratable(0.6)
                      .withInvocationFrequency(1e-2)
                      .withAccelerationFactor(9.0);
    EXPECT_DOUBLE_EQ(q.ipc, 1.7);
    EXPECT_EQ(q.robSize, 192u);
    EXPECT_DOUBLE_EQ(q.acceleratableFraction, 0.6);
    EXPECT_DOUBLE_EQ(q.invocationFrequency, 1e-2);
    EXPECT_DOUBLE_EQ(q.accelerationFactor, 9.0);
}

TEST(TcaParamsDeathTest, ValidationRejectsNonsense)
{
    TcaParams p;
    p.acceleratableFraction = 1.5;
    EXPECT_EXIT(p.validate(), testing::ExitedWithCode(1), "");

    TcaParams q;
    q.ipc = -1.0;
    EXPECT_EXIT(q.validate(), testing::ExitedWithCode(1), "");

    TcaParams r;
    r.invocationFrequency = 0.0;
    EXPECT_EXIT(r.validate(), testing::ExitedWithCode(1), "");
}

TEST(CorePresetTest, PaperFig7Cores)
{
    CorePreset hp = highPerfPreset();
    EXPECT_DOUBLE_EQ(hp.ipc, 1.8);
    EXPECT_EQ(hp.robSize, 256u);
    EXPECT_EQ(hp.issueWidth, 4u);

    CorePreset lp = lowPerfPreset();
    EXPECT_DOUBLE_EQ(lp.ipc, 0.5);
    EXPECT_EQ(lp.robSize, 64u);
    EXPECT_EQ(lp.issueWidth, 2u);
}

TEST(CorePresetTest, ApplyOverwritesCoreFieldsOnly)
{
    TcaParams base;
    base.acceleratableFraction = 0.42;
    TcaParams hp = highPerfPreset().apply(base);
    EXPECT_DOUBLE_EQ(hp.acceleratableFraction, 0.42);
    EXPECT_DOUBLE_EQ(hp.ipc, 1.8);
    EXPECT_EQ(hp.robSize, 256u);
}

TEST(CorePresetTest, A72IsThreeWide)
{
    CorePreset a72 = armA72Preset();
    EXPECT_EQ(a72.issueWidth, 3u);
    EXPECT_EQ(a72.robSize, 128u);
}

} // namespace
} // namespace model
} // namespace tca
