#include <gtest/gtest.h>

#include <algorithm>

#include "model/pareto.hh"

namespace tca {
namespace model {
namespace {

TEST(ParetoTest, DefaultCostsOrderedByComplexity)
{
    // NL_NT is the cheapest, L_T the most expensive; partial support
    // sits in between on both axes.
    HardwareCost nlnt = defaultModeCost(TcaMode::NL_NT);
    HardwareCost nlt = defaultModeCost(TcaMode::NL_T);
    HardwareCost lnt = defaultModeCost(TcaMode::L_NT);
    HardwareCost lt = defaultModeCost(TcaMode::L_T);
    EXPECT_LT(nlnt.area, nlt.area);
    EXPECT_LT(nlt.area, lt.area);
    EXPECT_LT(lnt.area, lt.area);
    EXPECT_LT(nlnt.power, lt.power);
}

TEST(ParetoTest, DominanceDefinition)
{
    DesignPoint better{"b", 2.0, {1.0, 1.0}};
    DesignPoint worse{"w", 1.5, {1.2, 1.1}};
    EXPECT_TRUE(dominates(better, worse));
    EXPECT_FALSE(dominates(worse, better));
}

TEST(ParetoTest, IncomparablePointsDoNotDominate)
{
    DesignPoint fast{"fast", 2.0, {2.0, 2.0}};
    DesignPoint cheap{"cheap", 1.2, {1.0, 1.0}};
    EXPECT_FALSE(dominates(fast, cheap));
    EXPECT_FALSE(dominates(cheap, fast));
}

TEST(ParetoTest, IdenticalPointsDoNotDominateEachOther)
{
    DesignPoint a{"a", 1.5, {1.0, 1.0}};
    DesignPoint b{"b", 1.5, {1.0, 1.0}};
    EXPECT_FALSE(dominates(a, b));
    EXPECT_FALSE(dominates(b, a));
    auto frontier = paretoFrontier({a, b});
    EXPECT_EQ(frontier.size(), 2u); // both kept
}

TEST(ParetoTest, FrontierRemovesDominatedDesigns)
{
    std::vector<DesignPoint> points = {
        {"nl_nt", 1.0, {1.0, 1.0}},   // cheapest
        {"l_nt", 1.1, {1.6, 1.5}},
        {"nl_t", 1.3, {1.5, 1.4}},    // dominates l_nt
        {"l_t", 1.5, {2.1, 1.9}},     // fastest
    };
    auto frontier = paretoFrontier(points);
    // l_nt is dominated by nl_t (faster, cheaper on both axes).
    ASSERT_EQ(frontier.size(), 3u);
    EXPECT_EQ(std::count(frontier.begin(), frontier.end(), 1u), 0);
}

TEST(ParetoTest, AllPointsOnFrontierWhenTradeOffIsMonotone)
{
    // Strictly increasing speedup AND cost: nothing is dominated.
    std::vector<DesignPoint> points = {
        {"a", 1.0, {1.0, 1.0}},
        {"b", 1.2, {1.3, 1.2}},
        {"c", 1.5, {1.8, 1.6}},
    };
    EXPECT_EQ(paretoFrontier(points).size(), 3u);
}

TEST(ParetoTest, SlowdownDesignDominatedByDoingNothing)
{
    // Include a "no accelerator" point: any mode that slows the
    // program down while costing hardware is off the frontier.
    std::vector<DesignPoint> points = {
        {"no_tca", 1.0, {0.0, 0.0}},
        {"nl_nt_slow", 0.8, {1.0, 1.0}},
        {"l_t", 1.4, {2.1, 1.9}},
    };
    auto frontier = paretoFrontier(points);
    ASSERT_EQ(frontier.size(), 2u);
    EXPECT_EQ(frontier[0], 0u);
    EXPECT_EQ(frontier[1], 2u);
}

TEST(ParetoTest, EmptyInput)
{
    EXPECT_TRUE(paretoFrontier({}).empty());
}

} // namespace
} // namespace model
} // namespace tca
