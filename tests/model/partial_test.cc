#include <gtest/gtest.h>

#include "model/partial.hh"

namespace tca {
namespace model {
namespace {

TcaParams
refParams()
{
    TcaParams p;
    p.acceleratableFraction = 0.3;
    p.invocationFrequency = 1e-3;
    p.ipc = 1.5;
    p.accelerationFactor = 3.0;
    p.robSize = 128;
    p.issueWidth = 3;
    p.commitStall = 10.0;
    return p;
}

TEST(PartialSpeculationModelTest, GatedFractionLimits)
{
    EXPECT_DOUBLE_EQ(gatedInvocationFraction(0.0, 100.0), 0.0);
    EXPECT_DOUBLE_EQ(gatedInvocationFraction(1.0, 1.0), 1.0);
    EXPECT_DOUBLE_EQ(gatedInvocationFraction(0.5, 0.0), 0.0);
}

TEST(PartialSpeculationModelTest, GatedFractionMonotonic)
{
    double prev = 0.0;
    for (double rate : {0.001, 0.01, 0.05, 0.2}) {
        double f = gatedInvocationFraction(rate, 64.0);
        EXPECT_GT(f, prev);
        EXPECT_LE(f, 1.0);
        prev = f;
    }
    // More in-flight instructions -> more likely gated.
    EXPECT_LT(gatedInvocationFraction(0.01, 16.0),
              gatedInvocationFraction(0.01, 256.0));
}

TEST(PartialSpeculationModelTest, InterpolatesBetweenLAndNl)
{
    IntervalModel model(refParams());
    // gated = 0 -> exactly the L mode; gated = 1 -> exactly NL.
    EXPECT_DOUBLE_EQ(partialIntervalTime(model, true, 0.0),
                     model.intervalTime(TcaMode::L_T));
    EXPECT_DOUBLE_EQ(partialIntervalTime(model, true, 1.0),
                     model.intervalTime(TcaMode::NL_T));
    EXPECT_DOUBLE_EQ(partialIntervalTime(model, false, 0.0),
                     model.intervalTime(TcaMode::L_NT));
    EXPECT_DOUBLE_EQ(partialIntervalTime(model, false, 1.0),
                     model.intervalTime(TcaMode::NL_NT));
}

TEST(PartialSpeculationModelTest, SpeedupBracketedByModes)
{
    IntervalModel model(refParams());
    for (double gated : {0.1, 0.3, 0.5, 0.9}) {
        double s = partialSpeedup(model, true, gated);
        EXPECT_LE(s, model.speedup(TcaMode::L_T) + 1e-12);
        EXPECT_GE(s, model.speedup(TcaMode::NL_T) - 1e-12);
    }
}

TEST(PartialSpeculationModelTest, SpeedupDecreasesWithGating)
{
    IntervalModel model(refParams());
    double prev = 1e18;
    for (double gated : {0.0, 0.25, 0.5, 0.75, 1.0}) {
        double s = partialSpeedup(model, false, gated);
        EXPECT_LE(s, prev + 1e-12);
        prev = s;
    }
}

TEST(PartialSpeculationModelDeathTest, RejectsOutOfRangeFraction)
{
    IntervalModel model(refParams());
    EXPECT_DEATH(partialIntervalTime(model, true, 1.5), "");
    EXPECT_DEATH(partialIntervalTime(model, true, -0.1), "");
}

} // namespace
} // namespace model
} // namespace tca
