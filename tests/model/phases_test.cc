#include <gtest/gtest.h>

#include "model/interval_model.hh"
#include "model/phases.hh"

namespace tca {
namespace model {
namespace {

TcaParams
phaseParams(double a, double g, double ipc)
{
    TcaParams p = armA72Preset().apply(TcaParams{});
    p.ipc = ipc;
    p.accelerationFactor = 3.0;
    return p.withAcceleratable(a).withGranularity(g);
}

TEST(PhasedModelTest, SinglePhaseMatchesIntervalModel)
{
    TcaParams p = phaseParams(0.3, 300.0, 1.5);
    PhasedModel phased({{"all", 1.0, p, true}});
    IntervalModel plain(p);
    for (TcaMode mode : allTcaModes)
        EXPECT_NEAR(phased.speedup(mode), plain.speedup(mode), 1e-9);
}

TEST(PhasedModelTest, UnacceleratedPhaseDilutesSpeedup)
{
    TcaParams p = phaseParams(0.5, 500.0, 1.5);
    PhasedModel pure({{"hot", 1.0, p, true}});
    PhasedModel diluted({
        {"hot", 0.5, p, true},
        {"cold", 0.5, p, false},
    });
    for (TcaMode mode : allTcaModes) {
        if (pure.speedup(mode) > 1.0) {
            EXPECT_LT(diluted.speedup(mode), pure.speedup(mode));
        }
        EXPECT_GT(diluted.speedup(mode), 0.0);
    }
}

TEST(PhasedModelTest, AmdahlOverPhases)
{
    // Hot phase infinitely accelerated (huge A, L_T): total speedup
    // bounded by the cold phase's share.
    TcaParams hot = phaseParams(0.99, 1e6, 1.5)
                        .withAccelerationFactor(1e9);
    PhasedModel phased({
        {"hot", 0.5, hot, true},
        {"cold", 0.5, hot, false},
    });
    // Cold phase is half the instructions at the same IPC: speedup
    // can approach but not exceed ~2.
    EXPECT_LT(phased.speedup(TcaMode::L_T), 2.0 + 1e-6);
    EXPECT_GT(phased.speedup(TcaMode::L_T), 1.8);
}

TEST(PhasedModelTest, PhasesWithDifferentIpcWeighted)
{
    // A slow phase (IPC 0.5) dominates baseline time over a fast one
    // (IPC 2.0) with equal instruction shares.
    TcaParams slow = phaseParams(0.3, 300.0, 0.5);
    TcaParams fast = phaseParams(0.3, 300.0, 2.0);
    PhasedModel phased({
        {"slow", 0.5, slow, true},
        {"fast", 0.5, fast, true},
    });
    EXPECT_NEAR(phased.baselineTime(), 0.5 / 0.5 + 0.5 / 2.0, 1e-12);
    EXPECT_EQ(phased.dominantPhase(TcaMode::L_T).name, "slow");
}

TEST(PhasedModelTest, DominantPhaseShiftsWithMode)
{
    // A fine-grained phase is cheap in L_T but blows up in NL_NT.
    TcaParams fine = phaseParams(0.5, 30.0, 2.0);
    TcaParams coarse = phaseParams(0.3, 1e6, 2.0);
    PhasedModel phased({
        {"fine", 0.4, fine, true},
        {"coarse", 0.6, coarse, true},
    });
    EXPECT_EQ(phased.dominantPhase(TcaMode::NL_NT).name, "fine");
}

TEST(PhasedModelDeathTest, RejectsBadShares)
{
    TcaParams p = phaseParams(0.3, 300.0, 1.5);
    EXPECT_EXIT(PhasedModel({{"half", 0.5, p, true}}),
                testing::ExitedWithCode(1), "");
    EXPECT_EXIT(PhasedModel({}), testing::ExitedWithCode(1), "");
}

} // namespace
} // namespace model
} // namespace tca
