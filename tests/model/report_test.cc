#include <gtest/gtest.h>

#include "model/interval_model.hh"
#include "model/report.hh"

namespace tca {
namespace model {
namespace {

TcaParams
fineGrained()
{
    TcaParams p = armA72Preset().apply(TcaParams{});
    p.accelerationFactor = 2.0;
    return p.withAcceleratable(0.3).withGranularity(50.0);
}

TcaParams
coarseGrained()
{
    TcaParams p = armA72Preset().apply(TcaParams{});
    p.accelerationFactor = 10.0;
    return p.withAcceleratable(0.4).withGranularity(1e7);
}

TEST(ReportTest, FineGrainedRecommendsFullIntegration)
{
    DesignAdvice advice = adviseDesign(fineGrained());
    EXPECT_EQ(advice.bestMode, TcaMode::L_T);
    EXPECT_EQ(advice.recommendedMode, TcaMode::L_T);
    // The NT modes slow the program down here.
    EXPECT_TRUE(advice.slowsDown(TcaMode::NL_NT));
    EXPECT_FALSE(advice.slowsDown(TcaMode::L_T));
}

TEST(ReportTest, CoarseGrainedRecommendsSimplestMode)
{
    // The synchronous modes effectively tie at coarse granularity.
    // L_T_async keeps a real edge (device time overlaps the
    // non-accelerated stream), so it wins the default 5% tolerance;
    // widening the tolerance past the overlap bonus restores the
    // paper's insight that the simplest hardware suffices.
    DesignAdvice advice = adviseDesign(coarseGrained());
    EXPECT_EQ(advice.bestMode, TcaMode::L_T_async);
    EXPECT_EQ(advice.recommendedMode, TcaMode::L_T_async);
    EXPECT_FALSE(advice.dominated(TcaMode::NL_NT));
    DesignAdvice loose = adviseDesign(coarseGrained(), 0.10);
    EXPECT_EQ(loose.recommendedMode, TcaMode::NL_NT);
    IntervalModel model(coarseGrained());
    EXPECT_NEAR(model.speedup(TcaMode::L_T) /
                    model.speedup(TcaMode::NL_NT),
                1.0, 1e-3);
}

TEST(ReportTest, SlowdownModesAreDominatedByNotBuilding)
{
    DesignAdvice advice = adviseDesign(fineGrained());
    for (TcaMode mode : allTcaModes) {
        if (advice.slowsDown(mode)) {
            EXPECT_TRUE(advice.dominated(mode))
                << tcaModeName(mode)
                << " slows down but is not dominated";
        }
    }
}

TEST(ReportTest, RecommendedWithinTolerance)
{
    for (double tol : {0.0, 0.05, 0.25}) {
        DesignAdvice advice = adviseDesign(fineGrained(), tol);
        EXPECT_GE(advice.recommendedSpeedup,
                  (1.0 - tol) * advice.bestSpeedup - 1e-12);
    }
}

TEST(ReportTest, TextReportContainsAllSections)
{
    std::string text = designReport(fineGrained());
    EXPECT_NE(text.find("[modes]"), std::string::npos);
    EXPECT_NE(text.find("[concurrency]"), std::string::npos);
    EXPECT_NE(text.find("[boundaries]"), std::string::npos);
    EXPECT_NE(text.find("[verdict]"), std::string::npos);
    EXPECT_NE(text.find("recommended"), std::string::npos);
    EXPECT_NE(text.find("SLOWDOWN"), std::string::npos);
}

TEST(ReportTest, ReportMatchesModelNumbers)
{
    TcaParams p = fineGrained();
    DesignAdvice advice = adviseDesign(p);
    IntervalModel model(p);
    EXPECT_NEAR(advice.bestSpeedup, model.speedup(advice.bestMode),
                1e-12);
    EXPECT_NEAR(advice.recommendedSpeedup,
                model.speedup(advice.recommendedMode), 1e-12);
}

} // namespace
} // namespace model
} // namespace tca
