#include <gtest/gtest.h>

#include <cmath>

#include "model/interval_model.hh"
#include "model/sensitivity.hh"

namespace tca {
namespace model {
namespace {

TcaParams
refParams()
{
    TcaParams p = armA72Preset().apply(TcaParams{});
    p.accelerationFactor = 3.0;
    return p.withAcceleratable(0.3).withGranularity(200.0);
}

TEST(SensitivityTest, CoversAllContinuousParameters)
{
    auto all = speedupElasticities(refParams(), TcaMode::L_T);
    EXPECT_EQ(all.size(), 7u);
    // Sorted by descending magnitude.
    for (size_t i = 1; i < all.size(); ++i)
        EXPECT_GE(std::fabs(all[i - 1].value),
                  std::fabs(all[i].value));
}

TEST(SensitivityTest, LtInsensitiveToCommitStall)
{
    // Eq. (9) has no t_commit term.
    auto all = speedupElasticities(refParams(), TcaMode::L_T);
    for (const Elasticity &e : all) {
        if (e.parameter == "t_commit")
            EXPECT_NEAR(e.value, 0.0, 1e-9);
    }
}

TEST(SensitivityTest, NlNtSensitiveToCommitStall)
{
    // Eq. (4) charges t_commit twice: more commit stall, less speedup.
    auto all = speedupElasticities(refParams(), TcaMode::NL_NT);
    bool found = false;
    for (const Elasticity &e : all) {
        if (e.parameter == "t_commit") {
            EXPECT_LT(e.value, 0.0);
            found = true;
        }
    }
    EXPECT_TRUE(found);
}

TEST(SensitivityTest, AcceleratableFractionHelpsLt)
{
    // More coverage -> more speedup in L_T (below the a* optimum).
    auto all = speedupElasticities(refParams(), TcaMode::L_T);
    for (const Elasticity &e : all) {
        if (e.parameter.rfind("a (", 0) == 0)
            EXPECT_GT(e.value, 0.0);
    }
}

TEST(SensitivityTest, InvocationFrequencyHurtsNlModes)
{
    // At fixed a, higher v = finer invocations = more drain/commit
    // penalties per instruction in NL_NT.
    auto all = speedupElasticities(refParams(), TcaMode::NL_NT);
    for (const Elasticity &e : all) {
        if (e.parameter.rfind("v (", 0) == 0)
            EXPECT_LT(e.value, 0.0);
    }
}

TEST(SensitivityTest, ElasticityPredictsSmallPerturbations)
{
    // First-order check: speedup(p * 1.02) ~ speedup * (1.02)^E.
    TcaParams p = refParams();
    auto all = speedupElasticities(p, TcaMode::NL_NT);
    double e_a = 0.0;
    for (const Elasticity &e : all)
        if (e.parameter.rfind("a (", 0) == 0)
            e_a = e.value;

    double base = IntervalModel(p).speedup(TcaMode::NL_NT);
    TcaParams bumped = p.withAcceleratable(
        p.acceleratableFraction * 1.02);
    double actual = IntervalModel(bumped).speedup(TcaMode::NL_NT);
    double predicted = base * std::pow(1.02, e_a);
    EXPECT_NEAR(actual, predicted, 0.01 * base);
}

TEST(SensitivityTest, DominantParameterIsTheLargest)
{
    TcaParams p = refParams();
    auto all = speedupElasticities(p, TcaMode::NL_T);
    Elasticity top = dominantParameter(p, TcaMode::NL_T);
    EXPECT_EQ(top.parameter, all.front().parameter);
    EXPECT_DOUBLE_EQ(top.value, all.front().value);
}

} // namespace
} // namespace model
} // namespace tca
