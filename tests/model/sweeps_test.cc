#include <gtest/gtest.h>

#include <cmath>

#include "model/sweeps.hh"

namespace tca {
namespace model {
namespace {

TcaParams
fig2Params()
{
    // Fig. 2 setup: A72-like core, 30% acceleratable, A = 3.
    TcaParams p = armA72Preset().apply(TcaParams{});
    p.acceleratableFraction = 0.3;
    p.accelerationFactor = 3.0;
    return p;
}

TEST(GranularitySweepTest, CoversRequestedRange)
{
    auto points = granularitySweep(fig2Params(), 10.0, 1e9, 4);
    ASSERT_GE(points.size(), 2u);
    EXPECT_NEAR(points.front().x, 10.0, 1e-6);
    EXPECT_NEAR(points.back().x, 1e9, 1.0);
    for (size_t i = 1; i < points.size(); ++i)
        EXPECT_GT(points[i].x, points[i - 1].x);
}

TEST(GranularitySweepTest, Fig2ShapeFineGrainedSpreads)
{
    auto points = granularitySweep(fig2Params(), 10.0, 1e9, 4);
    // Coarse end: all modes within a hair of each other.
    const SweepPoint &coarse = points.back();
    double spread_coarse = coarse.forMode(TcaMode::L_T) -
                           coarse.forMode(TcaMode::NL_NT);
    EXPECT_LT(spread_coarse, 0.01);
    // Fine end: large spread and NL_NT slowdown.
    const SweepPoint &fine = points.front();
    EXPECT_LT(fine.forMode(TcaMode::NL_NT), 1.0);
    EXPECT_GT(fine.forMode(TcaMode::L_T), 1.0);
}

TEST(GranularitySweepTest, LtSpeedupMonotonicallyNonWorseningAtCoarse)
{
    // For fixed a and A, the L_T speedup is essentially flat in
    // granularity once the ROB-fill term vanishes.
    auto points = granularitySweep(fig2Params(), 1e5, 1e9, 2);
    double first = points.front().forMode(TcaMode::L_T);
    for (const auto &p : points)
        EXPECT_NEAR(p.forMode(TcaMode::L_T), first, 0.02 * first);
}

TEST(AcceleratableSweepTest, XAxisIsAcceleratableFraction)
{
    auto points = acceleratableSweep(fig2Params(), 100.0, 0.1, 0.9, 17);
    ASSERT_EQ(points.size(), 17u);
    EXPECT_NEAR(points.front().x, 0.1, 1e-9);
    EXPECT_NEAR(points.back().x, 0.9, 1e-9);
}

TEST(HeatmapTest, DimensionsMatchRequest)
{
    HeatmapGrid grid =
        heatmapSweep(fig2Params(), 20, 1e-6, 1e-1, 25);
    EXPECT_EQ(grid.aValues.size(), 20u);
    EXPECT_EQ(grid.vValues.size(), 25u);
    for (const auto &mode_grid : grid.speedup) {
        ASSERT_EQ(mode_grid.size(), 20u);
        ASSERT_EQ(mode_grid[0].size(), 25u);
    }
}

TEST(HeatmapTest, SlowdownRegionOrdering)
{
    // Less OoO support can only enlarge the slowdown (blue) region.
    HeatmapGrid grid =
        heatmapSweep(fig2Params(), 24, 1e-6, 1e-1, 24);
    EXPECT_LE(grid.slowdownCells(TcaMode::L_T),
              grid.slowdownCells(TcaMode::L_NT));
    EXPECT_LE(grid.slowdownCells(TcaMode::L_NT),
              grid.slowdownCells(TcaMode::NL_NT));
    EXPECT_LE(grid.slowdownCells(TcaMode::NL_T),
              grid.slowdownCells(TcaMode::NL_NT));
}

TEST(HeatmapTest, LtNeverSlowsDown)
{
    // Full OoO support never predicts slowdown in the model.
    HeatmapGrid grid =
        heatmapSweep(fig2Params(), 16, 1e-6, 1e-1, 16);
    EXPECT_EQ(grid.slowdownCells(TcaMode::L_T), 0u);
}

TEST(HeatmapTest, HpCoreMoreModeSensitiveThanLp)
{
    // Section VI observation 1: high-performance cores see bigger
    // differences between modes. Compare NL_NT slowdown areas.
    TcaParams base;
    base.accelerationFactor = 1.5;
    HeatmapGrid hp = heatmapSweep(highPerfPreset().apply(base), 20,
                                  1e-5, 1e-1, 20);
    HeatmapGrid lp = heatmapSweep(lowPerfPreset().apply(base), 20,
                                  1e-5, 1e-1, 20);
    EXPECT_GT(hp.slowdownCells(TcaMode::NL_NT),
              lp.slowdownCells(TcaMode::NL_NT));
}

TEST(HeatmapTest, RenderProducesOneCharPerCell)
{
    HeatmapGrid grid = heatmapSweep(fig2Params(), 5, 1e-5, 1e-2, 7);
    std::string art = grid.render(TcaMode::L_T);
    // 5 rows of 7 chars plus newlines.
    EXPECT_EQ(art.size(), 5u * 8u);
}

TEST(HeatmapTest, NearestColumnLogScale)
{
    HeatmapGrid grid = heatmapSweep(fig2Params(), 4, 1e-6, 1e-2, 5);
    // Columns at 1e-6, 1e-5, 1e-4, 1e-3, 1e-2.
    EXPECT_EQ(grid.nearestColumn(1e-6), 0u);
    EXPECT_EQ(grid.nearestColumn(1e-2), 4u);
    EXPECT_EQ(grid.nearestColumn(9e-5), 2u);
}

TEST(HeatmapTest, CurveOverlayMarksCells)
{
    HeatmapGrid grid = heatmapSweep(fig2Params(), 10, 1e-6, 1e-1, 20);
    std::string plain = grid.render(TcaMode::L_T);
    std::string overlaid = grid.renderWithCurve(TcaMode::L_T, 100.0);
    EXPECT_EQ(plain.size(), overlaid.size());
    EXPECT_EQ(plain.find('*'), std::string::npos);
    // The g=100 curve (v = a/100, a in [0.01,0.99]) lies inside the
    // plotted v range, so stars appear — one per row at most.
    size_t stars = 0;
    for (char c : overlaid)
        stars += (c == '*');
    EXPECT_GT(stars, 0u);
    EXPECT_LE(stars, grid.aValues.size());
}

TEST(HeatmapTest, CurveOutsideRangeLeavesArtUntouched)
{
    HeatmapGrid grid = heatmapSweep(fig2Params(), 8, 1e-3, 1e-1, 10);
    // g = 1e9: v = a/1e9 is far below the plotted v range.
    std::string overlaid = grid.renderWithCurve(TcaMode::L_T, 1e9);
    EXPECT_EQ(overlaid.find('*'), std::string::npos);
}

TEST(FixedFunctionCurveTest, VEqualsAOverG)
{
    auto curve = fixedFunctionCurve(100.0, {0.1, 0.5, 1.0});
    ASSERT_EQ(curve.size(), 3u);
    EXPECT_NEAR(curve[0].second, 0.001, 1e-12);
    EXPECT_NEAR(curve[1].second, 0.005, 1e-12);
    EXPECT_NEAR(curve[2].second, 0.01, 1e-12);
}

TEST(Fig2MarkersTest, HasEightReferenceAccelerators)
{
    auto markers = fig2Markers();
    EXPECT_EQ(markers.size(), 8u);
    // Spot-check the extremes: H.264 is the coarsest, heap the finest.
    EXPECT_EQ(markers.front().name.substr(0, 5), "H.264");
    double coarsest = 0, finest = 1e18;
    for (const auto &m : markers) {
        coarsest = std::max(coarsest, m.instsPerInvocation);
        finest = std::min(finest, m.instsPerInvocation);
    }
    EXPECT_GE(coarsest / finest, 1e6);
}

} // namespace
} // namespace model
} // namespace tca
