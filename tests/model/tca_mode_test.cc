#include <gtest/gtest.h>

#include "model/tca_mode.hh"

namespace tca {
namespace model {
namespace {

TEST(TcaModeTest, LeadingCapability)
{
    EXPECT_TRUE(allowsLeading(TcaMode::L_T));
    EXPECT_TRUE(allowsLeading(TcaMode::L_NT));
    EXPECT_FALSE(allowsLeading(TcaMode::NL_T));
    EXPECT_FALSE(allowsLeading(TcaMode::NL_NT));
    EXPECT_TRUE(allowsLeading(TcaMode::L_T_async));
}

TEST(TcaModeTest, TrailingCapability)
{
    EXPECT_TRUE(allowsTrailing(TcaMode::L_T));
    EXPECT_TRUE(allowsTrailing(TcaMode::NL_T));
    EXPECT_FALSE(allowsTrailing(TcaMode::L_NT));
    EXPECT_FALSE(allowsTrailing(TcaMode::NL_NT));
    EXPECT_TRUE(allowsTrailing(TcaMode::L_T_async));
}

TEST(TcaModeTest, AsyncPredicate)
{
    EXPECT_TRUE(isAsyncMode(TcaMode::L_T_async));
    EXPECT_FALSE(isAsyncMode(TcaMode::L_T));
    EXPECT_FALSE(isAsyncMode(TcaMode::NL_T));
    EXPECT_FALSE(isAsyncMode(TcaMode::L_NT));
    EXPECT_FALSE(isAsyncMode(TcaMode::NL_NT));
}

TEST(TcaModeTest, NamesRoundTrip)
{
    for (TcaMode mode : allTcaModes)
        EXPECT_EQ(parseTcaMode(tcaModeName(mode)), mode);
}

TEST(TcaModeTest, ParseIsCaseInsensitive)
{
    EXPECT_EQ(parseTcaMode("nl_nt"), TcaMode::NL_NT);
    EXPECT_EQ(parseTcaMode(" L_T "), TcaMode::L_T);
}

TEST(TcaModeTest, AllModesListedOnce)
{
    EXPECT_EQ(allTcaModes.size(), 5u);
    for (size_t i = 0; i < allTcaModes.size(); ++i)
        for (size_t j = i + 1; j < allTcaModes.size(); ++j)
            EXPECT_NE(allTcaModes[i], allTcaModes[j]);
}

TEST(TcaModeTest, HardwareDescriptionsMentionKeyMechanisms)
{
    // L modes need rollback; T modes need dependency resolution.
    EXPECT_NE(tcaModeHardware(TcaMode::L_NT).find("rollback"),
              std::string::npos);
    EXPECT_NE(tcaModeHardware(TcaMode::NL_T).find("dependency"),
              std::string::npos);
    EXPECT_NE(tcaModeHardware(TcaMode::NL_NT).find("drain"),
              std::string::npos);
    EXPECT_NE(tcaModeHardware(TcaMode::L_T_async).find("queue"),
              std::string::npos);
}

} // namespace
} // namespace model
} // namespace tca
