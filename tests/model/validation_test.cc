#include <gtest/gtest.h>

#include "model/validation.hh"

namespace tca {
namespace model {
namespace {

TEST(ValidationTest, SignedPercentError)
{
    EXPECT_NEAR(percentError(1.1, 1.0), 10.0, 1e-9);
    EXPECT_NEAR(percentError(0.9, 1.0), -10.0, 1e-9);
    EXPECT_DOUBLE_EQ(percentError(2.0, 2.0), 0.0);
}

TEST(ValidationTest, SummaryStatistics)
{
    std::vector<double> est = {1.1, 0.8, 2.0};
    std::vector<double> meas = {1.0, 1.0, 2.0};
    ErrorSummary s = summarizeErrors(est, meas);
    EXPECT_EQ(s.count, 3u);
    EXPECT_NEAR(s.maxAbs, 20.0, 1e-9);
    EXPECT_NEAR(s.meanAbs, 10.0, 1e-9);
    EXPECT_NEAR(s.meanSigned, -10.0 / 3.0, 1e-9);
}

TEST(ValidationTest, EmptySummary)
{
    ErrorSummary s = summarizeErrors({}, {});
    EXPECT_EQ(s.count, 0u);
    EXPECT_DOUBLE_EQ(s.meanAbs, 0.0);
    EXPECT_DOUBLE_EQ(s.maxAbs, 0.0);
}

TEST(ValidationTest, PerfectEstimatesHaveZeroError)
{
    std::vector<double> v = {1.0, 2.0, 3.0};
    ErrorSummary s = summarizeErrors(v, v);
    EXPECT_DOUBLE_EQ(s.meanAbs, 0.0);
    EXPECT_DOUBLE_EQ(s.maxAbs, 0.0);
    EXPECT_DOUBLE_EQ(s.meanSigned, 0.0);
}

} // namespace
} // namespace model
} // namespace tca
