/**
 * @file
 * BenchHarness tests: robust aggregation (median/MAD), dominant-term
 * attribution, scenario filtering, and the BENCH_*.json round trip —
 * written by the harness, parsed back with the library's own JSON
 * parser, every schema key present.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include "obs/bench_harness.hh"
#include "util/json.hh"

using namespace tca;
using namespace tca::obs;

namespace {

std::string
slurp(const std::filesystem::path &path)
{
    std::ifstream in(path);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

/** A deterministic fake scenario with one mode-error report. */
BenchScenario
fakeScenario(const std::string &name, int *runs = nullptr)
{
    BenchScenario scenario;
    scenario.name = name;
    scenario.description = "fake scenario for the round-trip test";
    scenario.run = [runs](bool quick) {
        if (runs)
            ++*runs;
        ScenarioMetrics m;
        m.simCycles = quick ? 100 : 1000;
        m.committedUops = 4000;
        ModeErrorReport mode;
        mode.mode = "NL_T";
        mode.meanAbsErrorPercent = 7.5;
        mode.termGap.nonAccl = 1.0;
        mode.termGap.accl = 0.5;
        mode.termGap.drain = 4.0;
        mode.termGap.commit = 2.0;
        mode.dominantTerm = dominantTermName(mode.termGap);
        m.modeErrors.push_back(std::move(mode));
        return m;
    };
    return scenario;
}

} // anonymous namespace

TEST(BenchHarness, MedianOfOddEvenEmpty)
{
    EXPECT_EQ(medianOf({}), 0.0);
    EXPECT_EQ(medianOf({3.0}), 3.0);
    EXPECT_EQ(medianOf({5.0, 1.0, 3.0}), 3.0);
    EXPECT_EQ(medianOf({4.0, 1.0, 3.0, 2.0}), 2.5);
}

TEST(BenchHarness, SummarizeMedianAndMad)
{
    MetricSummary s = summarize({1.0, 2.0, 3.0, 4.0, 100.0});
    EXPECT_EQ(s.median, 3.0);
    // Deviations from 3: {2, 1, 0, 1, 97} -> MAD 1: one outlier
    // cannot move the record.
    EXPECT_EQ(s.mad, 1.0);
    EXPECT_EQ(s.samples.size(), 5u);
}

TEST(BenchHarness, ThroughputGuardsZeroSeconds)
{
    EXPECT_EQ(throughputPerSec(1000, 0.0), 0.0);
    EXPECT_EQ(throughputPerSec(1000, 0.5), 2000.0);
}

TEST(BenchHarness, DominantTermPicksLargestGap)
{
    IntervalBreakdown gap;
    gap.nonAccl = 1.0;
    gap.accl = 2.0;
    gap.drain = 8.0;
    gap.commit = 4.0;
    EXPECT_EQ(dominantTermName(gap), "t_drain");
    gap.commit = 9.0;
    EXPECT_EQ(dominantTermName(gap), "t_commit");
    EXPECT_EQ(dominantTermName(IntervalBreakdown{}), "t_non_accl");
}

TEST(BenchHarness, BenchJsonRoundTrip)
{
    auto dir = std::filesystem::temp_directory_path() /
        "tca_bench_harness_test";
    std::filesystem::remove_all(dir);

    BenchOptions options;
    options.repeats = 3;
    options.warmup = 1;
    options.outDir = dir.string();

    int runs = 0;
    BenchHarness harness(options);
    harness.add(fakeScenario("fake", &runs));
    std::vector<ScenarioOutcome> outcomes = harness.runAll();

    ASSERT_EQ(outcomes.size(), 1u);
    EXPECT_EQ(runs, 4); // 1 warmup + 3 repeats
    EXPECT_EQ(outcomes[0].simCycles, 1000u);
    EXPECT_EQ(outcomes[0].uopsPerSec.samples.size(), 3u);
    ASSERT_FALSE(outcomes[0].jsonPath.empty());

    // Round trip: the file the harness wrote parses with util/json
    // and carries every schema key tca_compare relies on.
    JsonValue doc;
    std::string error;
    ASSERT_TRUE(parseJson(slurp(outcomes[0].jsonPath), doc, &error))
        << error;
    ASSERT_TRUE(doc.isObject());
    EXPECT_EQ(doc.find("run")->str, "fake");
    EXPECT_EQ(doc.find("kind")->str, "bench");
    EXPECT_EQ(doc.find("bench_schema")->number, 1.0);
    EXPECT_EQ(doc.find("repeats")->number, 3.0);
    EXPECT_NE(doc.find("version"), nullptr);

    const JsonValue *metrics = doc.find("metrics");
    ASSERT_NE(metrics, nullptr);
    EXPECT_EQ(metrics->find("sim_cycles")->number, 1000.0);
    EXPECT_EQ(metrics->find("committed_uops")->number, 4000.0);
    for (const char *key : {"wall_seconds", "uops_per_sec"}) {
        const JsonValue *summary = metrics->find(key);
        ASSERT_NE(summary, nullptr) << key;
        EXPECT_NE(summary->find("median"), nullptr);
        EXPECT_NE(summary->find("mad"), nullptr);
        ASSERT_NE(summary->find("samples"), nullptr);
        EXPECT_EQ(summary->find("samples")->items.size(), 3u);
    }

    const JsonValue *mode = doc.find("model_error")->find("NL_T");
    ASSERT_NE(mode, nullptr);
    EXPECT_EQ(mode->find("mean_abs_error_percent")->number, 7.5);
    EXPECT_EQ(mode->find("dominant_term")->str, "t_drain");
    const JsonValue *gap = mode->find("term_gap");
    ASSERT_NE(gap, nullptr);
    for (const char *term :
         {"t_non_accl", "t_accl", "t_drain", "t_commit"})
        EXPECT_NE(gap->find(term), nullptr) << term;

    std::filesystem::remove_all(dir);
}

TEST(BenchHarness, FilterSelectsBySubstring)
{
    auto dir = std::filesystem::temp_directory_path() /
        "tca_bench_filter_test";
    std::filesystem::remove_all(dir);

    BenchOptions options;
    options.repeats = 1;
    options.warmup = 0;
    options.outDir = dir.string();
    options.filter = "heap";

    BenchHarness harness(options);
    harness.add(fakeScenario("heap_hot"));
    harness.add(fakeScenario("dgemm"));
    std::vector<ScenarioOutcome> outcomes = harness.runAll();

    ASSERT_EQ(outcomes.size(), 1u);
    EXPECT_EQ(outcomes[0].name, "heap_hot");
    EXPECT_TRUE(std::filesystem::exists(dir / "BENCH_heap_hot.json"));
    EXPECT_FALSE(std::filesystem::exists(dir / "BENCH_dgemm.json"));

    std::filesystem::remove_all(dir);
}

TEST(BenchHarness, WarmupIsTimedSeparatelyFromRepeats)
{
    auto dir = std::filesystem::temp_directory_path() /
        "tca_bench_warmup_test";
    std::filesystem::remove_all(dir);

    BenchOptions options;
    options.repeats = 3;
    options.warmup = 1;
    options.jobs = 1;
    options.outDir = dir.string();

    // The first execution (the warmup) is two orders of magnitude
    // slower than the repeats — the shape of pool startup, page
    // faults, and cold caches. None of it may leak into the repeat
    // median.
    int calls = 0;
    BenchScenario scenario;
    scenario.name = "coldstart";
    scenario.run = [&calls](bool) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(calls == 0 ? 200 : 2));
        ++calls;
        return ScenarioMetrics{};
    };

    BenchHarness harness(options);
    harness.add(scenario);
    std::vector<ScenarioOutcome> outcomes = harness.runAll();
    ASSERT_EQ(outcomes.size(), 1u);
    const ScenarioOutcome &o = outcomes[0];

    ASSERT_EQ(o.warmupSeconds.samples.size(), 1u);
    ASSERT_EQ(o.wallSeconds.samples.size(), 3u);
    EXPECT_GE(o.warmupSeconds.median, 0.2);
    // The repeat median must reflect the 2ms steady state, not the
    // 200ms warmup (generous bound for loaded CI machines).
    EXPECT_LT(o.wallSeconds.median, 0.1);
    for (double s : o.wallSeconds.samples)
        EXPECT_LT(s, 0.1);

    // The record carries the warmup summary and the parallelism
    // envelope fields.
    JsonValue doc;
    std::string error;
    ASSERT_TRUE(parseJson(slurp(o.jsonPath), doc, &error)) << error;
    EXPECT_EQ(doc.find("jobs")->number, 1.0);
    EXPECT_DOUBLE_EQ(doc.find("parallel_speedup")->number, 1.0);
    const JsonValue *warm = doc.find("metrics")->find("warmup_seconds");
    ASSERT_NE(warm, nullptr);
    ASSERT_NE(warm->find("samples"), nullptr);
    EXPECT_EQ(warm->find("samples")->items.size(), 1u);

    std::filesystem::remove_all(dir);
}

TEST(BenchHarness, ParallelScenariosRecordAchievedSpeedup)
{
    auto dir = std::filesystem::temp_directory_path() /
        "tca_bench_speedup_test";
    std::filesystem::remove_all(dir);

    BenchOptions options;
    options.repeats = 1;
    options.warmup = 0;
    options.jobs = 4;
    options.outDir = dir.string();

    BenchHarness harness(options);
    EXPECT_DOUBLE_EQ(harness.achievedParallelSpeedup(), 1.0);
    for (int s = 0; s < 4; ++s) {
        BenchScenario scenario;
        scenario.name = "sleep" + std::to_string(s);
        scenario.run = [](bool) {
            std::this_thread::sleep_for(std::chrono::milliseconds(60));
            return ScenarioMetrics{};
        };
        harness.add(scenario);
    }
    std::vector<ScenarioOutcome> outcomes = harness.runAll();
    ASSERT_EQ(outcomes.size(), 4u);
    // Registration order is preserved regardless of scheduling.
    for (int s = 0; s < 4; ++s)
        EXPECT_EQ(outcomes[s].name, "sleep" + std::to_string(s));
    // Four 60ms scenarios across 4 workers: busy/wall must show real
    // overlap (4x ideal; generous floor for loaded CI machines).
    EXPECT_GT(harness.achievedParallelSpeedup(), 1.5);

    JsonValue doc;
    std::string error;
    ASSERT_TRUE(parseJson(slurp(outcomes[0].jsonPath), doc, &error))
        << error;
    EXPECT_EQ(doc.find("jobs")->number, 4.0);
    EXPECT_DOUBLE_EQ(doc.find("parallel_speedup")->number,
                     harness.achievedParallelSpeedup());

    std::filesystem::remove_all(dir);
}

TEST(BenchHarness, QuickFlagReachesScenario)
{
    auto dir = std::filesystem::temp_directory_path() /
        "tca_bench_quick_test";
    std::filesystem::remove_all(dir);

    BenchOptions options;
    options.repeats = 1;
    options.warmup = 0;
    options.quick = true;
    options.outDir = dir.string();

    BenchHarness harness(options);
    harness.add(fakeScenario("fake"));
    std::vector<ScenarioOutcome> outcomes = harness.runAll();
    ASSERT_EQ(outcomes.size(), 1u);
    EXPECT_EQ(outcomes[0].simCycles, 100u); // the quick path ran

    std::filesystem::remove_all(dir);
}

TEST(BenchHarness, RegionsRecordedAndWrittenWhenProfiling)
{
    // Flip the process-wide profiling mode for this test only.
    prof::ProfMode saved = prof::mode();
    prof::setMode(prof::ProfMode::Regions);

    auto dir = std::filesystem::temp_directory_path() /
        "tca_bench_regions_test";
    std::filesystem::remove_all(dir);

    BenchOptions options;
    options.repeats = 2;
    options.warmup = 1;
    options.outDir = dir.string();

    BenchHarness harness(options);
    harness.add(fakeScenario("fake"));
    std::vector<ScenarioOutcome> outcomes = harness.runAll();
    prof::setMode(saved);

    ASSERT_EQ(outcomes.size(), 1u);
    const ScenarioOutcome &o = outcomes[0];
    ASSERT_TRUE(o.hasRegions);
    EXPECT_GT(o.regionWallSeconds, 0.0);
    ASSERT_TRUE(o.regions.count("scenario"));
    ASSERT_TRUE(o.regions.count("scenario/warmup"));
    ASSERT_TRUE(o.regions.count("scenario/repeat"));
    EXPECT_EQ(o.regions.at("scenario").count, 1u);
    EXPECT_EQ(o.regions.at("scenario/warmup").count, 1u);
    EXPECT_EQ(o.regions.at("scenario/repeat").count, 2u);

    JsonValue doc;
    std::string error;
    ASSERT_TRUE(parseJson(slurp(o.jsonPath), doc, &error)) << error;
    const JsonValue *host = doc.find("host");
    ASSERT_NE(host, nullptr);
    const JsonValue *regions = host->find("regions");
    ASSERT_NE(regions, nullptr);
    EXPECT_EQ(regions->find("meta")->find("mode")->str, "regions");
    const JsonValue *repeat = regions->find("scenario/repeat");
    ASSERT_NE(repeat, nullptr);
    EXPECT_EQ(repeat->find("count")->number, 2.0);

    std::filesystem::remove_all(dir);
}

TEST(BenchHarness, RegionsAbsentWhenProfilingOff)
{
    prof::ProfMode saved = prof::mode();
    prof::setMode(prof::ProfMode::Off);

    auto dir = std::filesystem::temp_directory_path() /
        "tca_bench_regions_off_test";
    std::filesystem::remove_all(dir);

    BenchOptions options;
    options.repeats = 1;
    options.warmup = 0;
    options.outDir = dir.string();

    BenchHarness harness(options);
    harness.add(fakeScenario("fake"));
    std::vector<ScenarioOutcome> outcomes = harness.runAll();
    prof::setMode(saved);

    ASSERT_EQ(outcomes.size(), 1u);
    EXPECT_FALSE(outcomes[0].hasRegions);

    JsonValue doc;
    std::string error;
    ASSERT_TRUE(parseJson(slurp(outcomes[0].jsonPath), doc, &error))
        << error;
    const JsonValue *host = doc.find("host");
    ASSERT_NE(host, nullptr);
    // The off path writes the exact pre-profiling host block: no
    // regions key at all, so off-mode output stays byte-compatible.
    EXPECT_EQ(host->find("regions"), nullptr);

    std::filesystem::remove_all(dir);
}
