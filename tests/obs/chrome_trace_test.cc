/**
 * @file
 * ChromeTraceWriter tests: a byte-exact golden document for a small
 * deterministic event sequence (the contract chrome://tracing and
 * Perfetto load), structural checks through the library's own JSON
 * parser, ring-buffer retention, and the TCA_OUT_DIR artifact path.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "obs/chrome_trace.hh"
#include "obs/manifest.hh"
#include "util/logging.hh"
#include "util/json.hh"

using namespace tca;

namespace {

obs::UopLifecycle
uop(uint64_t seq, mem::Cycle dispatch)
{
    obs::UopLifecycle u;
    u.seq = seq;
    u.cls = trace::OpClass::IntAlu;
    u.dispatch = dispatch;
    u.issue = dispatch + 2;
    u.complete = dispatch + 4;
    u.commit = dispatch + 6;
    return u;
}

/** The deterministic event sequence the golden document captures. */
void
feedSmallTrace(obs::ChromeTraceWriter &writer)
{
    obs::RunContext ctx;
    ctx.coreName = "test-core";
    writer.onRunBegin(ctx);
    writer.onCycle(0, 1);
    writer.onCycle(5, 2);  // skipped: inside the 10-cycle period
    writer.onCycle(12, 3);

    obs::UopLifecycle alu;
    alu.seq = 1;
    alu.cls = trace::OpClass::IntAlu;
    alu.dispatch = 2;
    alu.issue = 4;
    alu.complete = 6;
    alu.commit = 8;
    writer.onCommit(alu);

    obs::UopLifecycle acc;
    acc.seq = 2;
    acc.cls = trace::OpClass::Accel;
    acc.accelInvocation = 7;
    acc.dispatch = 3;
    acc.issue = 9; // > dispatch+1: surfaces as a rob_drain span
    acc.complete = 15;
    acc.commit = 16;
    writer.onCommit(acc);

    writer.onAccelInvocation(0, 7, "heap-tca", 9, 15, 6, 2);
    writer.onRunEnd(20, 2);
}

std::string
slurp(const std::filesystem::path &path)
{
    std::ifstream in(path);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

/** Scoped TCA_OUT_DIR override that restores the old value. */
class ScopedOutDir
{
  public:
    explicit ScopedOutDir(const char *value)
    {
        if (const char *old = std::getenv("TCA_OUT_DIR"))
            saved = old;
        if (value)
            setenv("TCA_OUT_DIR", value, 1);
        else
            unsetenv("TCA_OUT_DIR");
    }
    ~ScopedOutDir()
    {
        if (saved.empty())
            unsetenv("TCA_OUT_DIR");
        else
            setenv("TCA_OUT_DIR", saved.c_str(), 1);
    }

  private:
    std::string saved;
};

/**
 * The golden trace-event document for feedSmallTrace(). @VERSION@ is
 * the configure-time git-describe string, spliced at runtime so the
 * golden survives new commits.
 */
const char *kGolden = R"gold({
  "traceEvents": [
    {
      "name": "process_name",
      "cat": "__metadata",
      "ph": "M",
      "ts": 0,
      "pid": 1,
      "tid": 0,
      "args": {
        "name": "tcasim (test-core)"
      }
    },
    {
      "name": "thread_name",
      "cat": "__metadata",
      "ph": "M",
      "ts": 0,
      "pid": 1,
      "tid": 1,
      "args": {
        "name": "window: dispatch->issue"
      }
    },
    {
      "name": "thread_name",
      "cat": "__metadata",
      "ph": "M",
      "ts": 0,
      "pid": 1,
      "tid": 2,
      "args": {
        "name": "execute: issue->complete"
      }
    },
    {
      "name": "thread_name",
      "cat": "__metadata",
      "ph": "M",
      "ts": 0,
      "pid": 1,
      "tid": 3,
      "args": {
        "name": "commit wait: complete->retire"
      }
    },
    {
      "name": "thread_name",
      "cat": "__metadata",
      "ph": "M",
      "ts": 0,
      "pid": 1,
      "tid": 4,
      "args": {
        "name": "accelerator invocations"
      }
    },
    {
      "name": "thread_name",
      "cat": "__metadata",
      "ph": "M",
      "ts": 0,
      "pid": 1,
      "tid": 5,
      "args": {
        "name": "rob drain windows"
      }
    },
    {
      "name": "IntAlu",
      "cat": "uop",
      "ph": "X",
      "ts": 2,
      "pid": 1,
      "tid": 1,
      "dur": 2,
      "args": {
        "seq": 1
      }
    },
    {
      "name": "IntAlu",
      "cat": "uop",
      "ph": "X",
      "ts": 4,
      "pid": 1,
      "tid": 2,
      "dur": 2,
      "args": {
        "seq": 1
      }
    },
    {
      "name": "IntAlu",
      "cat": "uop",
      "ph": "X",
      "ts": 6,
      "pid": 1,
      "tid": 3,
      "dur": 2,
      "args": {
        "seq": 1
      }
    },
    {
      "name": "Accel inv7",
      "cat": "uop",
      "ph": "X",
      "ts": 3,
      "pid": 1,
      "tid": 1,
      "dur": 6,
      "args": {
        "seq": 2
      }
    },
    {
      "name": "Accel inv7",
      "cat": "uop",
      "ph": "X",
      "ts": 9,
      "pid": 1,
      "tid": 2,
      "dur": 6,
      "args": {
        "seq": 2
      }
    },
    {
      "name": "Accel inv7",
      "cat": "uop",
      "ph": "X",
      "ts": 15,
      "pid": 1,
      "tid": 3,
      "dur": 1,
      "args": {
        "seq": 2
      }
    },
    {
      "name": "rob_drain",
      "cat": "rob",
      "ph": "b",
      "ts": 4,
      "pid": 1,
      "tid": 5,
      "id": 2
    },
    {
      "name": "rob_drain",
      "cat": "rob",
      "ph": "e",
      "ts": 9,
      "pid": 1,
      "tid": 5,
      "id": 2
    },
    {
      "name": "heap-tca",
      "cat": "accel",
      "ph": "b",
      "ts": 9,
      "pid": 1,
      "tid": 4,
      "id": 7,
      "args": {
        "port": 0,
        "compute_latency": 6,
        "mem_requests": 2
      }
    },
    {
      "name": "heap-tca",
      "cat": "accel",
      "ph": "e",
      "ts": 15,
      "pid": 1,
      "tid": 4,
      "id": 7
    },
    {
      "name": "rob_occupancy",
      "cat": "rob",
      "ph": "C",
      "ts": 0,
      "pid": 1,
      "tid": 0,
      "args": {
        "occupancy": 1
      }
    },
    {
      "name": "rob_occupancy",
      "cat": "rob",
      "ph": "C",
      "ts": 12,
      "pid": 1,
      "tid": 0,
      "args": {
        "occupancy": 3
      }
    }
  ],
  "displayTimeUnit": "ms",
  "otherData": {
    "tool": "tcasim",
    "version": "@VERSION@",
    "run_cycles": 20,
    "run_uops": 2,
    "committed_seen": 2,
    "committed_retained": 2
  }
}
)gold";

std::string
expectedGolden()
{
    std::string expected = kGolden;
    const std::string placeholder = "@VERSION@";
    size_t at = expected.find(placeholder);
    EXPECT_NE(at, std::string::npos);
    expected.replace(at, placeholder.size(),
                     obs::RunManifest::buildVersion());
    return expected;
}

} // anonymous namespace

TEST(ChromeTrace, GoldenSmallTrace)
{
    obs::ChromeTraceWriter writer(4, 10);
    feedSmallTrace(writer);
    EXPECT_EQ(writer.str(), expectedGolden());
}

TEST(ChromeTrace, GoldenIsValidTraceEventJson)
{
    obs::ChromeTraceWriter writer(4, 10);
    feedSmallTrace(writer);

    JsonValue doc;
    std::string error;
    ASSERT_TRUE(parseJson(writer.str(), doc, &error)) << error;
    ASSERT_TRUE(doc.isObject());

    const JsonValue *events = doc.find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_TRUE(events->isArray());
    EXPECT_EQ(events->items.size(), 18u);
    for (const JsonValue &event : events->items) {
        // Every event carries the required trace-event fields.
        ASSERT_TRUE(event.isObject());
        EXPECT_NE(event.find("name"), nullptr);
        EXPECT_NE(event.find("ph"), nullptr);
        EXPECT_NE(event.find("ts"), nullptr);
        EXPECT_NE(event.find("pid"), nullptr);
        const JsonValue *phase = event.find("ph");
        const std::string &ph = phase->str;
        EXPECT_TRUE(ph == "M" || ph == "X" || ph == "b" || ph == "e" ||
                    ph == "C")
            << "unexpected phase " << ph;
        if (ph == "X") {
            EXPECT_NE(event.find("dur"), nullptr);
        }
        if (ph == "b" || ph == "e") {
            EXPECT_NE(event.find("id"), nullptr);
        }
    }
    EXPECT_NE(doc.find("displayTimeUnit"), nullptr);
    EXPECT_EQ(doc.find("otherData")->find("run_cycles")->number, 20.0);
}

TEST(ChromeTrace, RingOverwritesOldestAndResets)
{
    obs::ChromeTraceWriter writer(2, 0);
    writer.onRunBegin(obs::RunContext{});
    for (uint64_t seq = 0; seq < 5; ++seq)
        writer.onCommit(uop(seq, seq * 10));
    EXPECT_EQ(writer.size(), 2u);
    EXPECT_EQ(writer.totalCommitted(), 5u);

    // Only the two newest uops (seq 3, 4) render.
    std::string text = writer.str();
    EXPECT_EQ(text.find("\"seq\": 0"), std::string::npos);
    EXPECT_NE(text.find("\"seq\": 3"), std::string::npos);
    EXPECT_NE(text.find("\"seq\": 4"), std::string::npos);

    writer.onRunBegin(obs::RunContext{});
    EXPECT_EQ(writer.size(), 0u);
    EXPECT_EQ(writer.totalCommitted(), 0u);
}

TEST(ChromeTrace, CounterPeriodZeroDisablesCounterTrack)
{
    obs::ChromeTraceWriter writer(4, 0);
    writer.onRunBegin(obs::RunContext{});
    for (mem::Cycle c = 0; c < 100; ++c)
        writer.onCycle(c, 3);
    EXPECT_EQ(writer.str().find("rob_occupancy"), std::string::npos);
}

TEST(ChromeTrace, WriteIfRequestedHonorsOutDir)
{
    auto dir = std::filesystem::temp_directory_path() /
        "tca_chrome_trace_test";
    std::filesystem::remove_all(dir);
    ScopedOutDir scope(dir.c_str());

    obs::ChromeTraceWriter writer(4, 10);
    feedSmallTrace(writer);
    std::string path = writer.writeIfRequested("unit-run");
    ASSERT_FALSE(path.empty());
    EXPECT_EQ(path, (dir / "unit-run" / "trace.json").string());
    EXPECT_EQ(slurp(path), expectedGolden());

    std::filesystem::remove_all(dir);
}

TEST(ChromeTrace, WriteIfRequestedNoOpWithoutOutDir)
{
    ScopedOutDir scope(nullptr);
    obs::ChromeTraceWriter writer(4, 10);
    feedSmallTrace(writer);
    EXPECT_EQ(writer.writeIfRequested("unit-run"), "");
}

TEST(ChromeTrace, FlushOnPanicWritesValidClosedJson)
{
    namespace fs = std::filesystem;
    fs::path dir = fs::temp_directory_path() / "tca_panic_trace_test";
    fs::create_directories(dir);
    std::string path = (dir / "trace.json").string();

    {
        obs::ChromeTraceWriter writer(4, 10);
        feedSmallTrace(writer);
        writer.flushOnPanic(path);

        // Simulate the deadlock watchdog firing: the hooks run, and
        // the partial trace must land on disk as a closed document.
        runPanicHooks();

        JsonValue doc;
        std::string error;
        ASSERT_TRUE(parseJson(slurp(path), doc, &error)) << error;
        const JsonValue *events = doc.find("traceEvents");
        ASSERT_NE(events, nullptr);
        EXPECT_GT(events->items.size(), 0u);
    }

    // Destruction deregistered the hook: running the hooks again must
    // not touch the (now deleted) writer. Remove the file first so a
    // stale hook would visibly recreate it.
    fs::remove(path);
    runPanicHooks();
    EXPECT_FALSE(fs::exists(path));

    fs::remove_all(dir);
}
