/**
 * @file
 * Tests for the exact critical-path accounting layer: the sum
 * invariant (per-cause path cycles add up to total simulated cycles,
 * on every engine and workload shape), cp.json round-tripping, the
 * deterministic TCA_JOBS merge, report merging for the bench
 * envelopes, and a golden `tca_trace summary` rendering of the
 * fig5_heap-representative design point.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "cpu/core.hh"
#include "obs/critical_path.hh"
#include "workloads/experiment.hh"
#include "workloads/heap_workload.hh"
#include "workloads/synthetic.hh"

using namespace tca;
using namespace tca::obs;
using namespace tca::workloads;

namespace {

size_t
causeIndex(CpCause cause)
{
    return static_cast<size_t>(cause);
}

/** The fig5_heap representative design point, scaled for a unit test. */
HeapConfig
fig5RepresentativeConfig()
{
    HeapConfig conf;
    conf.numCalls = 50;
    conf.fillerUopsPerGap = 400;
    conf.seed = 7;
    return conf;
}

CpReport
runHeapNlT()
{
    HeapConfig conf = fig5RepresentativeConfig();
    HeapWorkload workload(conf);
    CriticalPathTracker tracker;
    runAcceleratedOnce(workload, cpu::a72CoreConfig(),
                       model::TcaMode::NL_T, nullptr, {}, nullptr,
                       cpu::Engine::Auto, &tracker);
    return tracker.report();
}

} // anonymous namespace

TEST(CriticalPathTest, SumInvariantEveryMode)
{
    HeapConfig conf = fig5RepresentativeConfig();
    HeapWorkload workload(conf);
    ExperimentOptions options;
    options.trackCriticalPath = true;
    ExperimentResult result =
        runExperiment(workload, cpu::a72CoreConfig(), options);
    for (const ModeOutcome &mode : result.modes) {
        ASSERT_TRUE(mode.hasCp);
        EXPECT_EQ(mode.cp.pathCyclesTotal(), mode.sim.cycles)
            << model::tcaModeName(mode.mode);
        EXPECT_EQ(mode.cp.totalCycles, mode.sim.cycles)
            << model::tcaModeName(mode.mode);
        EXPECT_EQ(mode.cp.numUops, mode.sim.committedUops)
            << model::tcaModeName(mode.mode);
    }
}

TEST(CriticalPathTest, SumInvariantBaselineRun)
{
    SyntheticConfig conf;
    conf.fillerUops = 5000;
    conf.numInvocations = 0;
    SyntheticWorkload workload(conf);
    CriticalPathTracker tracker;
    cpu::SimResult result =
        runBaselineOnce(workload, cpu::a72CoreConfig(), nullptr, {},
                        nullptr, cpu::Engine::Auto, &tracker);
    const CpReport &report = tracker.report();
    EXPECT_EQ(report.pathCyclesTotal(), result.cycles);
    EXPECT_GT(report.numSegments, 0u);
}

TEST(CriticalPathTest, NlModeAttributesDrainEdges)
{
    CpReport report = runHeapNlT();
    // NL mode issues every invocation behind a full-window drain, so
    // the tracker must see one drain wait per invocation.
    EXPECT_EQ(report.waitCounts[causeIndex(CpCause::NlDrain)], 50u);
    EXPECT_GT(report.waitCycles[causeIndex(CpCause::NlDrain)], 0u);
    EXPECT_GT(cpDrainWaitPerInvocation(report), 0.0);
}

TEST(CriticalPathTest, JsonRoundTrip)
{
    CpReport report = runHeapNlT();
    std::string text = cpJsonString(report);

    CpReport parsed;
    std::string error;
    ASSERT_TRUE(parseCpJson(text, parsed, &error)) << error;
    EXPECT_EQ(parsed.totalCycles, report.totalCycles);
    EXPECT_EQ(parsed.numUops, report.numUops);
    EXPECT_EQ(parsed.numSegments, report.numSegments);
    EXPECT_EQ(parsed.path.size(), report.path.size());
    for (size_t i = 0; i < kNumCpCauses; ++i) {
        EXPECT_EQ(parsed.pathCycles[i], report.pathCycles[i]);
        EXPECT_EQ(parsed.waitCycles[i], report.waitCycles[i]);
    }
    // Byte-exact fixpoint: rendering the parsed report reproduces the
    // document, so tca_trace sees exactly what the tracker wrote.
    EXPECT_EQ(cpJsonString(parsed), text);
}

TEST(CriticalPathTest, ParseRejectsMalformedInput)
{
    CpReport report;
    std::string error;
    EXPECT_FALSE(parseCpJson("not json", report, &error));
    EXPECT_FALSE(error.empty());
    EXPECT_FALSE(parseCpJson("{\"uops\": 3}", report, &error));
}

TEST(CriticalPathTest, MergeSumsAttribution)
{
    CpReport a;
    a.totalCycles = 100;
    a.numUops = 10;
    a.pathCycles[causeIndex(CpCause::Execute)] = 100;
    a.slackSamples = 4;
    a.slackMean = 2.0;
    a.slackMax = 5;

    CpReport b;
    b.totalCycles = 50;
    b.numUops = 5;
    b.pathCycles[causeIndex(CpCause::Execute)] = 30;
    b.pathCycles[causeIndex(CpCause::NlDrain)] = 20;
    b.slackSamples = 12;
    b.slackMean = 6.0;
    b.slackMax = 3;

    mergeCpReports(a, b);
    EXPECT_EQ(a.totalCycles, 150u);
    EXPECT_EQ(a.numUops, 15u);
    EXPECT_EQ(a.pathCycles[causeIndex(CpCause::Execute)], 130u);
    EXPECT_EQ(a.pathCycles[causeIndex(CpCause::NlDrain)], 20u);
    EXPECT_EQ(a.slackSamples, 16u);
    EXPECT_DOUBLE_EQ(a.slackMean, 5.0); // (4*2 + 12*6) / 16
    EXPECT_EQ(a.slackMax, 5u);
    EXPECT_EQ(a.pathCyclesTotal(), a.totalCycles);
}

TEST(CriticalPathTest, BatchStatsByteIdenticalAcrossJobs)
{
    ExperimentOptions options;
    options.collectStats = true;
    options.trackCriticalPath = true;

    auto factory = [](size_t i) -> std::unique_ptr<TcaWorkload> {
        HeapConfig conf;
        conf.numCalls = 20;
        conf.fillerUopsPerGap = 200 + 100 * static_cast<uint32_t>(i);
        conf.seed = 7;
        return std::make_unique<HeapWorkload>(conf);
    };

    ExperimentBatch serial = runExperimentBatch(
        4, factory, cpu::a72CoreConfig(), options, 1);
    ExperimentBatch parallel = runExperimentBatch(
        4, factory, cpu::a72CoreConfig(), options, 8);

    // The merged stats tree — cp.* subtree included — must not depend
    // on how jobs were scheduled.
    EXPECT_EQ(serial.stats.str(), parallel.stats.str());
    EXPECT_TRUE(serial.stats.has("cp.total_cycles"));
    EXPECT_TRUE(serial.stats.has("cp.path.cycles.nl_drain"));

    // And the per-result reports themselves are byte-identical.
    ASSERT_EQ(serial.results.size(), parallel.results.size());
    for (size_t i = 0; i < serial.results.size(); ++i) {
        for (size_t m = 0; m < serial.results[i].modes.size(); ++m) {
            EXPECT_EQ(
                cpJsonString(serial.results[i].modes[m].cp),
                cpJsonString(parallel.results[i].modes[m].cp))
                << "result " << i << " mode " << m;
        }
    }
}

TEST(CriticalPathTest, GoldenSummaryFig5Representative)
{
    // `tca_trace summary` output for the fig5_heap representative
    // design point (gap 400, seed 7), scaled to 50 calls. Exact text:
    // any change to the walk, the cause taxonomy, or the formatting
    // must be deliberate enough to re-bless this.
    CpReport report = runHeapNlT();
    const std::string golden =
        "critical path: 14508 cycles, 20050 uops, 15035 segments "
        "(tail retained)\n"
        "off-path slack: 5301 samples, mean 120.36, max 645\n"
        "\n"
        "cause                 path cycles   share    edges  "
        "wait cycles    waits\n"
        "execute                      8700   60.0%       98  "
        "          0        0\n"
        "commit                       4746   32.7%    12100  "
        "          0        0\n"
        "dispatch                      877    6.0%     2616  "
        "          0        0\n"
        "fu_busy                       119    0.8%       38  "
        "      55912    13730\n"
        "accel_execute                  38    0.3%       38  "
        "          0        0\n"
        "mem_port_busy                  28    0.2%       10  "
        "      21245      998\n"
        "data_dep                        0    0.0%       61  "
        "     253560     9455\n"
        "nl_drain                        0    0.0%       38  "
        "        471       50\n"
        "store_forward                   0    0.0%        0  "
        "        131        2\n"
        "rob_full                        0    0.0%       36  "
        "          0        0\n"
        "total                       14508  100.0%\n";
    EXPECT_EQ(formatCpSummary(report), golden);
}

TEST(CriticalPathTest, FormatPathHonorsLimit)
{
    CpReport report = runHeapNlT();
    ASSERT_GT(report.path.size(), 4u);
    std::string limited = formatCpPath(report, 3);
    // Header + column header + 3 segment rows.
    size_t lines = 0;
    for (char c : limited)
        lines += c == '\n';
    EXPECT_EQ(lines, 5u);
}
