/**
 * @file
 * EventSink plumbing tests: MultiSink fan-out, and a counting sink
 * attached to a real core run cross-checked against the SimResult the
 * run itself reports.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "accel/fixed_latency_tca.hh"
#include "cpu/core.hh"
#include "mem/hierarchy.hh"
#include "obs/event_sink.hh"
#include "trace/trace_source.hh"

using namespace tca;

namespace {

/** Counts every event category and keeps the last RunContext. */
struct CountingSink : obs::EventSink
{
    obs::RunContext ctx;
    uint64_t runBegins = 0, runEnds = 0, cycles = 0;
    uint64_t dispatches = 0, issues = 0, commits = 0;
    uint64_t accelCommits = 0, stalls = 0;
    uint64_t robAllocates = 0, robRetires = 0;
    uint64_t memPortClaims = 0, memPortWait = 0;
    uint64_t accelInvocations = 0, deviceEvents = 0;
    uint32_t maxOccupancy = 0;
    mem::Cycle endCycles = 0;
    uint64_t endUops = 0;

    void onRunBegin(const obs::RunContext &c) override
    {
        ctx = c;
        ++runBegins;
    }
    void onRunEnd(mem::Cycle c, uint64_t uops) override
    {
        ++runEnds;
        endCycles = c;
        endUops = uops;
    }
    void onCycle(mem::Cycle, uint32_t occupancy) override
    {
        ++cycles;
        if (occupancy > maxOccupancy)
            maxOccupancy = occupancy;
    }
    void onDispatch(uint64_t, const trace::MicroOp &,
                    mem::Cycle) override
    {
        ++dispatches;
    }
    void onIssue(uint64_t, mem::Cycle) override { ++issues; }
    void onCommit(const obs::UopLifecycle &uop) override
    {
        ++commits;
        if (uop.isAccel())
            ++accelCommits;
        EXPECT_LE(uop.dispatch, uop.issue);
        EXPECT_LE(uop.issue, uop.complete);
        EXPECT_LE(uop.complete, uop.commit);
    }
    void onDispatchStall(uint8_t cause, mem::Cycle) override
    {
        ASSERT_LT(cause, ctx.stallCauseNames.size());
        ++stalls;
    }
    void onRobAllocate(uint64_t, uint32_t) override { ++robAllocates; }
    void onRobRetire(uint64_t, uint32_t) override { ++robRetires; }
    void onMemPortClaim(mem::Cycle requested,
                        mem::Cycle granted) override
    {
        ++memPortClaims;
        ASSERT_GE(granted, requested);
        memPortWait += granted - requested;
    }
    void onAccelInvocation(uint8_t, uint32_t, const char *device,
                           mem::Cycle start, mem::Cycle complete,
                           uint32_t, uint32_t) override
    {
        ++accelInvocations;
        EXPECT_STREQ(device, "fixed_latency_tca");
        EXPECT_LT(start, complete);
    }
    void onAccelDeviceEvent(const char *, const char *,
                            uint64_t) override
    {
        ++deviceEvents;
    }
};

trace::MicroOp
makeOp(trace::OpClass cls)
{
    trace::MicroOp op;
    op.cls = cls;
    return op;
}

} // anonymous namespace

TEST(EventSink, CoreRunMatchesSimResult)
{
    cpu::CoreConfig conf;
    conf.name = "sink-test";
    mem::MemHierarchy hierarchy{mem::HierarchyConfig{}};
    cpu::Core core(conf, hierarchy);
    accel::FixedLatencyTca tca(15);
    core.bindAccelerator(&tca, model::TcaMode::NL_NT);

    trace::VectorTrace trace;
    for (int inv = 0; inv < 4; ++inv) {
        for (int i = 0; i < 40; ++i)
            trace.push(makeOp(trace::OpClass::IntAlu));
        trace.push(makeOp(trace::OpClass::Accel));
    }

    CountingSink sink;
    core.setEventSink(&sink);
    cpu::SimResult r = core.run(trace);

    // Run lifetime.
    EXPECT_EQ(sink.runBegins, 1u);
    EXPECT_EQ(sink.runEnds, 1u);
    EXPECT_EQ(sink.endCycles, r.cycles);
    EXPECT_EQ(sink.endUops, r.committedUops);
    EXPECT_EQ(sink.cycles, r.cycles);

    // The RunContext mirrors the config.
    EXPECT_EQ(sink.ctx.coreName, conf.name);
    EXPECT_EQ(sink.ctx.robSize, conf.robSize);
    EXPECT_EQ(sink.ctx.dispatchWidth, conf.dispatchWidth);
    EXPECT_EQ(sink.ctx.issueWidth, conf.issueWidth);
    EXPECT_EQ(sink.ctx.commitWidth, conf.commitWidth);
    EXPECT_EQ(sink.ctx.commitLatency, conf.commitLatency);
    EXPECT_EQ(sink.ctx.memPorts, conf.memPorts);
    ASSERT_EQ(sink.ctx.stallCauseNames.size(),
              static_cast<size_t>(cpu::StallCause::NumCauses));
    EXPECT_EQ(sink.ctx.stallCauseNames[static_cast<size_t>(
                  cpu::StallCause::RobFull)],
              cpu::stallCauseName(cpu::StallCause::RobFull));

    // Every committed uop produced one dispatch, issue, commit, ROB
    // allocate, and ROB retire (the simulator models no wrong path).
    EXPECT_EQ(sink.commits, r.committedUops);
    EXPECT_EQ(sink.dispatches, r.committedUops);
    EXPECT_EQ(sink.issues, r.committedUops);
    EXPECT_EQ(sink.robAllocates, r.committedUops);
    EXPECT_EQ(sink.robRetires, r.committedUops);
    EXPECT_EQ(sink.accelCommits, r.accelInvocations);
    EXPECT_EQ(sink.accelInvocations, r.accelInvocations);
    EXPECT_EQ(sink.accelCommits, 4u);

    // Stall events match the per-cause totals in the SimResult.
    uint64_t result_stalls = 0;
    for (uint64_t cycles : r.stallCycles)
        result_stalls += cycles;
    EXPECT_EQ(sink.stalls, result_stalls);
    // NL_NT over 4 invocations must have stalled at least once on the
    // dispatch barrier.
    EXPECT_GT(r.stalls(cpu::StallCause::SerializeBarrier), 0u);
    EXPECT_LE(sink.maxOccupancy, conf.robSize);
}

TEST(EventSink, DetachedSinkSeesNothing)
{
    cpu::CoreConfig conf;
    mem::MemHierarchy hierarchy{mem::HierarchyConfig{}};
    cpu::Core core(conf, hierarchy);
    trace::VectorTrace trace;
    for (int i = 0; i < 10; ++i)
        trace.push(makeOp(trace::OpClass::IntAlu));

    CountingSink sink;
    core.setEventSink(&sink);
    core.setEventSink(nullptr); // detach again before running
    core.run(trace);
    EXPECT_EQ(sink.runBegins, 0u);
    EXPECT_EQ(sink.commits, 0u);
    EXPECT_EQ(sink.cycles, 0u);
}

TEST(EventSink, MultiSinkFansOutToAll)
{
    CountingSink a, b;
    obs::MultiSink multi({&a});
    multi.add(&b);

    obs::RunContext ctx;
    ctx.coreName = "fanout";
    ctx.stallCauseNames = {"none", "rob_full"};
    multi.onRunBegin(ctx);
    multi.onCycle(1, 3);
    multi.onCycle(2, 5);
    obs::UopLifecycle uop;
    uop.seq = 7;
    uop.dispatch = 1;
    uop.issue = 2;
    uop.complete = 3;
    uop.commit = 4;
    multi.onCommit(uop);
    multi.onDispatchStall(1, 2);
    multi.onMemPortClaim(4, 6);
    multi.onRunEnd(10, 1);

    for (const CountingSink *sink : {&a, &b}) {
        EXPECT_EQ(sink->runBegins, 1u);
        EXPECT_EQ(sink->ctx.coreName, "fanout");
        EXPECT_EQ(sink->cycles, 2u);
        EXPECT_EQ(sink->maxOccupancy, 5u);
        EXPECT_EQ(sink->commits, 1u);
        EXPECT_EQ(sink->stalls, 1u);
        EXPECT_EQ(sink->memPortClaims, 1u);
        EXPECT_EQ(sink->memPortWait, 2u);
        EXPECT_EQ(sink->runEnds, 1u);
        EXPECT_EQ(sink->endCycles, 10u);
    }
}
