/**
 * @file
 * Flamegraph analytics tests: collapsed-stack parsing (including
 * malformed-line rejection with line numbers), canonical round-trip,
 * per-frame self/total attribution with recursion dedup, table and
 * diff rendering, the merge tree, and deterministic SVG output.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "obs/flamegraph.hh"

using namespace tca::obs::flame;

namespace {

std::vector<Stack>
parseOrDie(const std::string &text)
{
    std::vector<Stack> stacks;
    std::string error;
    EXPECT_TRUE(parseCollapsed(text, stacks, &error)) << error;
    return stacks;
}

} // anonymous namespace

TEST(Flamegraph, ParseCollapsedBasics)
{
    std::vector<Stack> stacks =
        parseOrDie("main;run;hot 10\n"
                   "\n"
                   "main;run 3\n"
                   "main;run;hot 2\n");
    ASSERT_EQ(stacks.size(), 3u);
    EXPECT_EQ(stacks[0].frames,
              (std::vector<std::string>{"main", "run", "hot"}));
    EXPECT_EQ(stacks[0].count, 10u);
    EXPECT_EQ(stacks[1].frames,
              (std::vector<std::string>{"main", "run"}));
    EXPECT_EQ(totalSamples(stacks), 15u);
}

TEST(Flamegraph, ParseRejectsMalformedLinesWithLineNumbers)
{
    std::vector<Stack> stacks;
    std::string error;

    EXPECT_FALSE(parseCollapsed("main;run\n", stacks, &error));
    EXPECT_NE(error.find("line 1"), std::string::npos) << error;

    EXPECT_FALSE(parseCollapsed("a 1\nmain;run 1x\n", stacks, &error));
    EXPECT_NE(error.find("line 2"), std::string::npos) << error;

    EXPECT_FALSE(parseCollapsed("a 1\nb 1\nmain;run 0\n", stacks,
                                &error));
    EXPECT_NE(error.find("line 3"), std::string::npos) << error;

    EXPECT_FALSE(parseCollapsed("main;;run 2\n", stacks, &error));
    EXPECT_NE(error.find("line 1"), std::string::npos) << error;
}

TEST(Flamegraph, WriteCollapsedCanonicalizes)
{
    // Duplicates merge, lines sort: parse -> write is normalizing and
    // a second round-trip is a fixed point.
    std::vector<Stack> stacks = parseOrDie("b;c 2\na 1\nb;c 3\n");
    std::ostringstream os;
    writeCollapsed(os, stacks);
    EXPECT_EQ(os.str(), "a 1\nb;c 5\n");

    std::vector<Stack> again = parseOrDie(os.str());
    std::ostringstream os2;
    writeCollapsed(os2, again);
    EXPECT_EQ(os2.str(), os.str());
}

TEST(Flamegraph, FrameStatsSelfAndDedupedTotals)
{
    // "rec" appears twice in the first stack: total must count that
    // stack's samples once, not twice.
    std::vector<Stack> stacks =
        parseOrDie("main;rec;rec;leaf 4\n"
                   "main;rec 2\n"
                   "main;other 1\n");
    auto stats = frameStats(stacks);
    EXPECT_EQ(stats["leaf"].self, 4u);
    EXPECT_EQ(stats["leaf"].total, 4u);
    EXPECT_EQ(stats["rec"].self, 2u);
    EXPECT_EQ(stats["rec"].total, 6u);
    EXPECT_EQ(stats["main"].self, 0u);
    EXPECT_EQ(stats["main"].total, 7u);
    EXPECT_EQ(stats["other"].self, 1u);
}

TEST(Flamegraph, FlameTableRanksBySelf)
{
    std::vector<Stack> stacks =
        parseOrDie("main;hot 90\nmain;cold 10\n");
    std::string table = formatFlameTable(stacks, 30);
    EXPECT_NE(table.find("hot"), std::string::npos);
    EXPECT_NE(table.find("cold"), std::string::npos);
    EXPECT_NE(table.find("100 samples"), std::string::npos) << table;
    // "hot" (90 self) ranks above "cold" (10 self).
    EXPECT_LT(table.find("hot"), table.find("cold"));

    std::string limited = formatFlameTable(stacks, 1);
    EXPECT_NE(limited.find("hot"), std::string::npos);
    // The limit drops "cold" as a ranked row; it may still appear in
    // no other place, so it must be absent entirely.
    EXPECT_EQ(limited.find("cold"), std::string::npos) << limited;
}

TEST(Flamegraph, FlameDiffNormalizesShares)
{
    // Same shape, different totals: shares are identical, so no frame
    // should show a large delta; then shift weight onto "hot".
    std::vector<Stack> before = parseOrDie("m;hot 50\nm;cold 50\n");
    std::vector<Stack> same = parseOrDie("m;hot 5\nm;cold 5\n");
    std::string flat = formatFlameDiff(before, same, 10);
    EXPECT_NE(flat.find("100 -> 10 samples"), std::string::npos)
        << flat;

    std::vector<Stack> after = parseOrDie("m;hot 90\nm;cold 10\n");
    std::string diff = formatFlameDiff(before, after, 10);
    // hot gained 40 points of self share, cold lost 40; both appear
    // and rank ahead of the unchanged footer line.
    EXPECT_NE(diff.find("hot"), std::string::npos);
    EXPECT_NE(diff.find("cold"), std::string::npos);
    EXPECT_NE(diff.find("100 -> 100 samples"), std::string::npos)
        << diff;
}

TEST(Flamegraph, BuildFlameTreeStructure)
{
    std::vector<Stack> stacks =
        parseOrDie("main;a;b 3\nmain;a 2\nmain;c 1\n");
    FlameNode root = buildFlameTree(stacks);
    EXPECT_EQ(root.total, 6u);
    EXPECT_EQ(root.self, 0u);
    ASSERT_EQ(root.children.size(), 1u);
    const FlameNode &main_node = root.children.at("main");
    EXPECT_EQ(main_node.total, 6u);
    EXPECT_EQ(main_node.self, 0u);
    ASSERT_EQ(main_node.children.size(), 2u);
    const FlameNode &a = main_node.children.at("a");
    EXPECT_EQ(a.total, 5u);
    EXPECT_EQ(a.self, 2u);
    EXPECT_EQ(a.children.at("b").total, 3u);
    EXPECT_EQ(a.children.at("b").self, 3u);
    EXPECT_EQ(main_node.children.at("c").total, 1u);
}

TEST(Flamegraph, SvgIsSelfContainedAndDeterministic)
{
    std::vector<Stack> stacks =
        parseOrDie("main;engine:dispatch 60\nmain;commit 40\n");
    std::ostringstream first, second;
    writeFlameSvg(first, stacks, "unit <test>");
    writeFlameSvg(second, stacks, "unit <test>");
    EXPECT_EQ(first.str(), second.str());

    const std::string &svg = first.str();
    EXPECT_NE(svg.find("<svg"), std::string::npos);
    EXPECT_NE(svg.find("</svg>"), std::string::npos);
    EXPECT_NE(svg.find("<title>"), std::string::npos);
    // Title is escaped, never raw markup.
    EXPECT_EQ(svg.find("unit <test>"), std::string::npos);
    EXPECT_NE(svg.find("unit &lt;test&gt;"), std::string::npos);
    // Tooltips carry counts and the frames are present.
    EXPECT_NE(svg.find("engine:dispatch"), std::string::npos);
    EXPECT_NE(svg.find("commit"), std::string::npos);
    EXPECT_NE(svg.find("100 samples"), std::string::npos);
    // No scripts: must render in sandboxed CI artifact viewers.
    EXPECT_EQ(svg.find("<script"), std::string::npos);
}
