/**
 * @file
 * Host-side self-profiling: rusage-based CPU time + max RSS always
 * work; perf_event_open counters degrade gracefully when the kernel
 * or container denies them.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "obs/host_profile.hh"
#include "util/json.hh"

using namespace tca;

TEST(HostProfileTest, RusageProfileIsAlwaysValid)
{
    obs::HostProfiler profiler;
    profiler.start();

    // Burn a little CPU so user time is measurable as >= 0 without
    // being a pure no-op the compiler can fold away.
    volatile double sink = 0.0;
    std::vector<double> work(4096, 1.5);
    for (int round = 0; round < 200; ++round)
        for (double v : work)
            sink = sink + v * 1.000001;
    (void)sink;

    obs::HostProfile profile = profiler.stop();
    EXPECT_TRUE(profile.valid);
    EXPECT_GT(profile.maxRssBytes, 0u);
    EXPECT_GE(profile.userSeconds, 0.0);
    EXPECT_GE(profile.sysSeconds, 0.0);
}

TEST(HostProfileTest, PerfCountersGateOnAvailability)
{
    obs::HostProfiler profiler;
    profiler.start();
    volatile uint64_t acc = 0;
    for (uint64_t i = 0; i < 100000; ++i)
        acc = acc + i;
    (void)acc;
    obs::HostProfile profile = profiler.stop();

    if (profiler.perfAvailable()) {
        EXPECT_TRUE(profile.perf.valid);
        EXPECT_GT(profile.perf.cycles, 0u);
        EXPECT_GT(profile.perf.instructions, 0u);
    } else {
        // Containers commonly deny perf_event_open; the profile must
        // still be valid with the perf block marked invalid.
        EXPECT_FALSE(profile.perf.valid);
        EXPECT_TRUE(profile.valid);
    }
}

TEST(HostProfileTest, WriteJsonShapeParses)
{
    obs::HostProfiler profiler;
    profiler.start();
    obs::HostProfile profile = profiler.stop();

    std::ostringstream os;
    {
        JsonWriter json(os);
        profile.writeJson(json);
    }
    JsonValue doc;
    ASSERT_TRUE(parseJson(os.str(), doc));
    ASSERT_NE(doc.find("valid"), nullptr);
    ASSERT_NE(doc.find("max_rss_bytes"), nullptr);
    EXPECT_GT(doc.find("max_rss_bytes")->number, 0.0);
    ASSERT_NE(doc.find("user_seconds"), nullptr);
    ASSERT_NE(doc.find("sys_seconds"), nullptr);
    const JsonValue *perf = doc.find("perf");
    ASSERT_NE(perf, nullptr);
    ASSERT_NE(perf->find("valid"), nullptr);
}

TEST(HostProfileTest, RestartableAcrossRuns)
{
    obs::HostProfiler profiler;
    profiler.start();
    obs::HostProfile first = profiler.stop();
    profiler.start();
    obs::HostProfile second = profiler.stop();
    EXPECT_TRUE(first.valid);
    EXPECT_TRUE(second.valid);
    // Deltas are per-interval, not cumulative since construction.
    EXPECT_LT(second.userSeconds + second.sysSeconds, 1.0);
}
