/**
 * @file
 * Host self-profiling tests: TCA_PROF mode selection, the ProfRegion
 * stack (paths, counts, exact self-time telescoping, exception
 * balance), RegionCapture isolation and index-order merging (the
 * TCA_JOBS 1-vs-8 determinism property), the host.regions JSON shape,
 * the engine-stage slot discipline, and the SIGPROF sampler's
 * artifacts including the panic flush.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "cpu/core.hh"
#include "obs/host_sampler.hh"
#include "trace/builder.hh"
#include "util/json.hh"
#include "util/logging.hh"
#include "util/thread_pool.hh"

using namespace tca;
using namespace tca::obs;

// The sampler arms a process-wide SIGPROF timer; TSan's interceptors
// are not async-signal-safe enough to trust there, so sampler tests
// are skipped under it (the TSan CI job never sets TCA_PROF either).
#if defined(__SANITIZE_THREAD__)
#define TCA_TSAN 1
#endif
#if !defined(TCA_TSAN) && defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define TCA_TSAN 1
#endif
#endif
#ifndef TCA_TSAN
#define TCA_TSAN 0
#endif

namespace {

/** Save and restore the process-wide profiling mode around a test. */
class ProfModeGuard
{
  public:
    explicit ProfModeGuard(prof::ProfMode mode) : saved(prof::mode())
    {
        prof::setMode(mode);
    }
    ~ProfModeGuard() { prof::setMode(saved); }

  private:
    prof::ProfMode saved;
};

/** Burn a little CPU so timed regions are nonzero and samples land. */
uint64_t
spin(uint64_t iterations)
{
    volatile uint64_t accumulator = 0;
    for (uint64_t i = 0; i < iterations; ++i)
        accumulator = accumulator + i * i;
    return accumulator;
}

} // anonymous namespace

TEST(ProfMode, ParseNamesAndReportOk)
{
    bool ok = false;
    EXPECT_EQ(prof::parseProfMode("off", &ok), prof::ProfMode::Off);
    EXPECT_TRUE(ok);
    EXPECT_EQ(prof::parseProfMode("SAMPLE", &ok),
              prof::ProfMode::Sample);
    EXPECT_TRUE(ok);
    EXPECT_EQ(prof::parseProfMode("Regions", &ok),
              prof::ProfMode::Regions);
    EXPECT_TRUE(ok);
    EXPECT_EQ(prof::parseProfMode("bogus", &ok), prof::ProfMode::Off);
    EXPECT_FALSE(ok);
    EXPECT_STREQ(prof::profModeName(prof::ProfMode::Sample), "sample");
    EXPECT_STREQ(prof::profModeName(prof::ProfMode::Regions),
                 "regions");
    EXPECT_STREQ(prof::profModeName(prof::ProfMode::Off), "off");
}

TEST(ProfRegion, OffModeIsInert)
{
    ProfModeGuard guard(prof::ProfMode::Off);
    EXPECT_FALSE(prof::enabled());
    EXPECT_EQ(prof::engineStageSlot(), nullptr);
    // setStage on the null slot is the documented free path.
    prof::setStage(nullptr, prof::EngineStage::Dispatch);

    prof::RegionCapture capture;
    {
        prof::ProfRegion outer("outer");
        prof::ProfRegion inner("inner");
        EXPECT_EQ(prof::currentPath(), "");
    }
    EXPECT_TRUE(capture.take().empty());
    EXPECT_EQ(capture.overheadNs(), 0u);
}

TEST(ProfRegion, NestedPathsCountsAndExactTelescoping)
{
    ProfModeGuard guard(prof::ProfMode::Regions);
    prof::RegionCapture capture;
    {
        prof::ProfRegion root("root");
        EXPECT_EQ(prof::currentPath(), "root");
        for (int i = 0; i < 3; ++i) {
            prof::ProfRegion child("child");
            EXPECT_EQ(prof::currentPath(), "root/child");
            spin(20000);
            {
                prof::ProfRegion leaf("leaf");
                EXPECT_EQ(prof::currentPath(), "root/child/leaf");
                spin(20000);
            }
        }
    }
    prof::RegionTable table = capture.take();

    ASSERT_EQ(table.size(), 3u);
    ASSERT_TRUE(table.count("root"));
    ASSERT_TRUE(table.count("root/child"));
    ASSERT_TRUE(table.count("root/child/leaf"));
    EXPECT_EQ(table["root"].count, 1u);
    EXPECT_EQ(table["root/child"].count, 3u);
    EXPECT_EQ(table["root/child/leaf"].count, 3u);

    // Self = total - child time, exactly, so self-times telescope to
    // the root total with zero error by construction.
    uint64_t self_sum = 0;
    for (const auto &[path, stats] : table) {
        EXPECT_LE(stats.selfNs, stats.totalNs) << path;
        self_sum += stats.selfNs;
    }
    EXPECT_EQ(self_sum, table["root"].totalNs);
    EXPECT_GT(table["root/child/leaf"].selfNs, 0u);
}

TEST(ProfRegion, ExceptionUnwindingBalancesTheStack)
{
    ProfModeGuard guard(prof::ProfMode::Regions);
    prof::RegionCapture capture;
    try {
        prof::ProfRegion outer("outer");
        prof::ProfRegion inner("inner");
        throw std::runtime_error("boom");
    } catch (const std::runtime_error &) {
    }
    // Unwinding popped both regions: the path is empty again and new
    // regions root at the top level, not under a leaked frame.
    EXPECT_EQ(prof::currentPath(), "");
    {
        prof::ProfRegion after("after");
        EXPECT_EQ(prof::currentPath(), "after");
    }
    prof::RegionTable table = capture.take();
    EXPECT_EQ(table.count("outer"), 1u);
    EXPECT_EQ(table.count("outer/inner"), 1u);
    EXPECT_EQ(table.count("after"), 1u);
}

TEST(ProfRegion, CaptureReRootsPathsInsideOpenRegions)
{
    ProfModeGuard guard(prof::ProfMode::Regions);
    prof::RegionCapture outer_capture;
    prof::ProfRegion outer("outer");
    prof::RegionTable captured;
    {
        // A capture opened with regions on the stack re-roots path
        // building: work inside records the same relative paths it
        // would on a bare pool-worker thread.
        prof::RegionCapture capture;
        {
            prof::ProfRegion job("job");
            EXPECT_EQ(prof::currentPath(), "job");
        }
        captured = capture.take();
    }
    ASSERT_EQ(captured.size(), 1u);
    EXPECT_TRUE(captured.count("job"));
}

TEST(ProfRegion, MergePrefixesAndAccumulates)
{
    ProfModeGuard guard(prof::ProfMode::Regions);
    prof::RegionTable a, b;
    a["x"].count = 2;
    a["x"].totalNs = 100;
    a["x"].selfNs = 100;
    b["x"].count = 3;
    b["x"].totalNs = 50;
    b["x"].selfNs = 50;
    b["x/y"].count = 1;

    prof::RegionTable merged;
    prof::mergeRegions(merged, a, "par/");
    prof::mergeRegions(merged, b, "par/");
    ASSERT_EQ(merged.size(), 2u);
    EXPECT_EQ(merged["par/x"].count, 5u);
    EXPECT_EQ(merged["par/x"].totalNs, 150u);
    EXPECT_EQ(merged["par/x/y"].count, 1u);
}

TEST(ProfRegion, JobTablesIdenticalAtAnyJobCount)
{
    ProfModeGuard guard(prof::ProfMode::Regions);

    // The batch discipline from runExperimentBatch: every job records
    // into its own capture, tables merge in index order under "par/".
    // Counts and paths — the deterministic columns — must be
    // identical however many workers the pool used.
    auto run_batch = [](size_t jobs) {
        const size_t count = 12;
        std::vector<prof::RegionTable> job_tables(count);
        util::parallelForIndexed(
            count,
            [&](size_t i) {
                prof::RegionCapture capture;
                {
                    prof::ProfRegion experiment("experiment");
                    prof::ProfRegion mode(
                        "mode_" + std::to_string(i % 3));
                    spin(1000);
                }
                job_tables[i] = capture.take();
            },
            jobs);
        prof::RegionTable merged;
        for (const prof::RegionTable &table : job_tables)
            prof::mergeRegions(merged, table, "par/");
        return merged;
    };

    prof::RegionTable serial = run_batch(1);
    prof::RegionTable parallel = run_batch(8);

    ASSERT_EQ(serial.size(), parallel.size());
    auto it_serial = serial.begin();
    auto it_parallel = parallel.begin();
    for (; it_serial != serial.end(); ++it_serial, ++it_parallel) {
        EXPECT_EQ(it_serial->first, it_parallel->first);
        EXPECT_EQ(it_serial->second.count, it_parallel->second.count)
            << it_serial->first;
    }
    EXPECT_EQ(serial.count("par/experiment"), 1u);
    EXPECT_EQ(serial["par/experiment"].count, 12u);
    EXPECT_EQ(serial["par/experiment/mode_0"].count, 4u);
}

TEST(ProfRegion, WriteRegionsJsonShape)
{
    ProfModeGuard guard(prof::ProfMode::Regions);
    prof::RegionTable table;
    table["scenario"].count = 1;
    table["scenario"].totalNs = 2000000000ull;
    table["scenario"].selfNs = 500000000ull;
    table["scenario/repeat"].count = 3;
    table["scenario/repeat"].totalNs = 1500000000ull;
    table["scenario/repeat"].selfNs = 1500000000ull;
    table["scenario/repeat"].perfValid = true;
    table["scenario/repeat"].totalPerf[0] = 12345;
    table["scenario/repeat"].selfPerf[0] = 12345;

    std::ostringstream os;
    JsonWriter writer(os);
    prof::writeRegionsJson(writer, table, 2.01, 1000000ull);

    JsonValue doc;
    std::string error;
    ASSERT_TRUE(parseJson(os.str(), doc, &error)) << error;
    const JsonValue *meta = doc.find("meta");
    ASSERT_NE(meta, nullptr);
    EXPECT_EQ(meta->find("mode")->str, "regions");
    EXPECT_DOUBLE_EQ(meta->find("wall_seconds")->number, 2.01);
    EXPECT_DOUBLE_EQ(meta->find("overhead_seconds")->number, 0.001);

    const JsonValue *scenario = doc.find("scenario");
    ASSERT_NE(scenario, nullptr);
    EXPECT_DOUBLE_EQ(scenario->find("count")->number, 1.0);
    EXPECT_DOUBLE_EQ(scenario->find("total_seconds")->number, 2.0);
    EXPECT_DOUBLE_EQ(scenario->find("self_seconds")->number, 0.5);
    // No counters on this entry -> no counter keys at all.
    EXPECT_EQ(scenario->find("cycles"), nullptr);

    const JsonValue *repeat = doc.find("scenario/repeat");
    ASSERT_NE(repeat, nullptr);
    EXPECT_DOUBLE_EQ(repeat->find("cycles")->number, 12345.0);
    EXPECT_DOUBLE_EQ(repeat->find("self_cycles")->number, 12345.0);
}

TEST(ProfRegion, OverheadIsMeasuredAndPositive)
{
    ProfModeGuard guard(prof::ProfMode::Regions);
    prof::RegionCapture capture;
    for (int i = 0; i < 100; ++i)
        prof::ProfRegion region("tick");
    EXPECT_GT(capture.overheadNs(), 0u);
    prof::RegionTable table = capture.take();
    EXPECT_EQ(table["tick"].count, 100u);
}

TEST(ProfRegion, ProfilingDoesNotPerturbSimulationResults)
{
    // The profiler only observes host time: a profiled run must
    // produce the identical simulated outcome as an unprofiled one.
    auto run_core = [] {
        cpu::CoreConfig conf;
        conf.name = "prof_determinism";
        trace::TraceBuilder builder;
        for (int i = 0; i < 2000; ++i)
            builder.alu(static_cast<trace::RegId>(1 + (i % 16)));
        mem::HierarchyConfig mem_conf;
        mem::MemHierarchy hierarchy(mem_conf);
        cpu::Core core(conf, hierarchy);
        trace::VectorTrace trace(builder.take());
        return core.run(trace);
    };

    cpu::SimResult off_result, regions_result;
    {
        ProfModeGuard guard(prof::ProfMode::Off);
        off_result = run_core();
    }
    {
        ProfModeGuard guard(prof::ProfMode::Regions);
        prof::RegionCapture capture;
        regions_result = run_core();
        prof::RegionTable table = capture.take();
        // The engine annotated itself under the profiler.
        EXPECT_EQ(table.count("core_run"), 1u);
    }
    EXPECT_EQ(off_result.cycles, regions_result.cycles);
    EXPECT_EQ(off_result.committedUops, regions_result.committedUops);
}

TEST(ProfRegion, EngineStageSlotIsPerThreadAndWritable)
{
    ProfModeGuard guard(prof::ProfMode::Regions);
    uint8_t *slot = prof::engineStageSlot();
    ASSERT_NE(slot, nullptr);
    prof::setStage(slot, prof::EngineStage::Commit);
    EXPECT_EQ(*slot, static_cast<uint8_t>(prof::EngineStage::Commit));
    prof::setStage(slot, prof::EngineStage::None);
    EXPECT_EQ(*slot, static_cast<uint8_t>(prof::EngineStage::None));
    EXPECT_STREQ(prof::engineStageName(prof::EngineStage::WheelDrain),
                 "wheel_drain");
}

#if !TCA_TSAN

TEST(HostSampler, SamplesAttributeToRegionsAndFlush)
{
    ProfModeGuard guard(prof::ProfMode::Sample);
    HostSampler &sampler = HostSampler::global();
    sampler.reset();
    ASSERT_TRUE(sampler.start(2000));
    EXPECT_TRUE(sampler.running());
    {
        prof::RegionCapture capture;
        prof::ProfRegion region("sampler_test_region");
        // ~100ms of CPU at 2 kHz -> expect on the order of 100+
        // samples; require a conservative handful.
        while (sampler.numSamples() < 5)
            spin(2000000);
        (void)capture.take();
    }
    sampler.stop();
    EXPECT_FALSE(sampler.running());
    EXPECT_GE(sampler.numSamples(), 5u);
    EXPECT_GT(sampler.durationSeconds(), 0.0);

    std::ostringstream collapsed;
    sampler.writeCollapsed(collapsed);
    EXPECT_NE(collapsed.str().find("sampler_test_region"),
              std::string::npos);
    // Every line is "frames count": the flamegraph parser accepts the
    // whole artifact (collapsed-stack golden contract).
    std::ostringstream json_os;
    JsonWriter writer(json_os);
    sampler.writeProfileJson(writer);
    JsonValue doc;
    std::string error;
    ASSERT_TRUE(parseJson(json_os.str(), doc, &error)) << error;
    EXPECT_EQ(doc.find("kind")->str, "host_profile");
    EXPECT_GT(doc.find("samples")->number, 0.0);
    ASSERT_NE(doc.find("regions"), nullptr);
    sampler.reset();
    EXPECT_EQ(sampler.numSamples(), 0u);
}

TEST(HostSampler, PanicHookFlushesPartialProfile)
{
    namespace fs = std::filesystem;
    ProfModeGuard guard(prof::ProfMode::Sample);
    fs::path dir = fs::temp_directory_path() / "tca_panic_prof_test";
    fs::remove_all(dir);

    HostSampler &sampler = HostSampler::global();
    sampler.reset();
    ASSERT_TRUE(sampler.start(2000));
    while (sampler.numSamples() < 1)
        spin(2000000);
    sampler.flushOnPanic(dir.string());

    // The panic path: hooks run, the timer is disarmed, both
    // artifacts exist and the JSON one parses.
    runPanicHooks();
    EXPECT_FALSE(sampler.running());
    EXPECT_TRUE(fs::exists(dir / "profile.collapsed"));
    EXPECT_TRUE(fs::exists(dir / "profile.json"));
    std::ifstream in(dir / "profile.json");
    std::stringstream buffer;
    buffer << in.rdbuf();
    JsonValue doc;
    std::string error;
    EXPECT_TRUE(parseJson(buffer.str(), doc, &error)) << error;

    // Deregistered hooks must not re-fire (recursion/eternity guard:
    // cancel, wipe, re-run — nothing comes back).
    sampler.cancelPanicFlush();
    fs::remove_all(dir);
    runPanicHooks();
    EXPECT_FALSE(fs::exists(dir / "profile.collapsed"));
    sampler.reset();
}

#endif // !TCA_TSAN
