/**
 * @file
 * Exact-value tests for the measured interval breakdown: hand-built
 * VectorTraces on a hand-sized core whose per-stage timing can be
 * derived on paper, checked in all four TCA integration modes.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "accel/fixed_latency_tca.hh"
#include "cpu/core.hh"
#include "mem/hierarchy.hh"
#include "obs/interval_profiler.hh"
#include "trace/trace_source.hh"
#include "util/json.hh"

using namespace tca;

namespace {

constexpr uint32_t kAccelLatency = 20;
constexpr uint32_t kCommitLatency = 5;

/** 4-wide core with cheap, fully deterministic IntAlu timing. */
cpu::CoreConfig
testConfig()
{
    cpu::CoreConfig conf;
    conf.name = "obs-test";
    conf.dispatchWidth = 4;
    conf.issueWidth = 4;
    conf.commitWidth = 4;
    conf.robSize = 32;
    conf.iqSize = 32;
    conf.lsqSize = 8;
    conf.intAluUnits = 4;
    conf.commitLatency = kCommitLatency;
    return conf;
}

trace::MicroOp
alu()
{
    trace::MicroOp op;
    op.cls = trace::OpClass::IntAlu;
    return op;
}

trace::MicroOp
accelOp(uint32_t invocation)
{
    trace::MicroOp op;
    op.cls = trace::OpClass::Accel;
    op.accelInvocation = invocation;
    return op;
}

obs::IntervalProfiler
profileRun(trace::VectorTrace &trace, model::TcaMode mode,
           accel::FixedLatencyTca &tca)
{
    trace.rewind();
    mem::MemHierarchy hierarchy{mem::HierarchyConfig{}};
    cpu::Core core(testConfig(), hierarchy);
    core.bindAccelerator(&tca, mode);
    obs::IntervalProfiler profiler;
    core.setEventSink(&profiler);
    core.run(trace);
    return profiler;
}

} // anonymous namespace

// A lone Accel uop: dispatch at 0, issue at 1, complete at 1+L,
// retire commitLatency cycles later — identically in all four modes
// (the NL oldest-uop condition and the NT barrier are trivially met).
TEST(IntervalProfiler, LoneAccelUopExactInAllModes)
{
    for (model::TcaMode mode : model::allTcaModes) {
        accel::FixedLatencyTca tca(kAccelLatency);
        trace::VectorTrace trace;
        trace.push(accelOp(0));

        obs::IntervalProfiler profiler = profileRun(trace, mode, tca);
        ASSERT_EQ(profiler.intervals().size(), 1u)
            << tcaModeName(mode);
        const obs::IntervalRecord &rec = profiler.intervals()[0];
        EXPECT_EQ(rec.beginCycle, 0u) << tcaModeName(mode);
        if (model::isAsyncMode(mode)) {
            // Async: the uop retires on the enqueue ack one cycle
            // after issue; the 20 device cycles run off-window.
            EXPECT_EQ(rec.endCycle, 2 + kCommitLatency);
            EXPECT_DOUBLE_EQ(rec.accl, 1.0);
        } else {
            EXPECT_EQ(rec.endCycle, 1 + kAccelLatency + kCommitLatency);
            EXPECT_DOUBLE_EQ(rec.accl, kAccelLatency);
        }
        EXPECT_DOUBLE_EQ(rec.commit, kCommitLatency);
        EXPECT_DOUBLE_EQ(rec.drain, 0.0);
        // total - accl - drain - commit = the 1-cycle dispatch->issue
        // front-end latency.
        EXPECT_DOUBLE_EQ(rec.nonAccl, 1.0);
        EXPECT_EQ(rec.committedUops, 1u);
    }
}

// 24 independent leading ALU uops, the Accel uop, 24 trailing:
//  - leading uops dispatch 4/cycle over cycles 0..5, so the Accel uop
//    dispatches at cycle 6;
//  - L modes: it issues the next cycle (7) -> t_drain = 0;
//  - NL modes: the last leading batch (dispatched at 5, complete at 7)
//    retires at cycle 12, so the Accel uop is oldest and issues at 12
//    -> t_drain = 12 - 7 = 5 measured window-drain cycles;
//  - either way t_accl = L exactly and t_commit = commitLatency.
TEST(IntervalProfiler, WindowDrainMeasuredExactly)
{
    struct Expect
    {
        model::TcaMode mode;
        double drain;
        mem::Cycle end;
    };
    const Expect expectations[] = {
        {model::TcaMode::L_T, 0.0, 32},
        {model::TcaMode::L_NT, 0.0, 32},
        {model::TcaMode::NL_T, 5.0, 37},
        {model::TcaMode::NL_NT, 5.0, 37},
    };
    for (const Expect &e : expectations) {
        accel::FixedLatencyTca tca(kAccelLatency);
        trace::VectorTrace trace;
        for (int i = 0; i < 24; ++i)
            trace.push(alu());
        trace.push(accelOp(0));
        for (int i = 0; i < 24; ++i)
            trace.push(alu());

        obs::IntervalProfiler profiler =
            profileRun(trace, e.mode, tca);
        ASSERT_EQ(profiler.intervals().size(), 1u)
            << tcaModeName(e.mode);
        const obs::IntervalRecord &rec = profiler.intervals()[0];
        EXPECT_DOUBLE_EQ(rec.accl, kAccelLatency)
            << tcaModeName(e.mode);
        EXPECT_DOUBLE_EQ(rec.commit, kCommitLatency)
            << tcaModeName(e.mode);
        EXPECT_DOUBLE_EQ(rec.drain, e.drain) << tcaModeName(e.mode);
        EXPECT_EQ(rec.endCycle, e.end) << tcaModeName(e.mode);
        // Residual: accel dispatch (cycle 6) + 1 front-end cycle,
        // identical in all modes.
        EXPECT_DOUBLE_EQ(rec.nonAccl, 7.0) << tcaModeName(e.mode);
        EXPECT_EQ(rec.committedUops, 25u) << tcaModeName(e.mode);

        obs::IntervalSummary summary = profiler.summary();
        EXPECT_EQ(summary.count, 1u);
        EXPECT_DOUBLE_EQ(summary.mean.drain, e.drain);
        EXPECT_EQ(summary.tailUops, 24u); // trailing, after boundary
        EXPECT_GT(summary.tailCycles, 0u);
    }
}

TEST(IntervalProfiler, MultipleIntervalsAndSummaryMeans)
{
    accel::FixedLatencyTca tca(kAccelLatency);
    trace::VectorTrace trace;
    for (int inv = 0; inv < 3; ++inv) {
        for (int i = 0; i < 8; ++i)
            trace.push(alu());
        trace.push(accelOp(inv));
    }
    obs::IntervalProfiler profiler =
        profileRun(trace, model::TcaMode::L_T, tca);
    ASSERT_EQ(profiler.intervals().size(), 3u);
    for (const obs::IntervalRecord &rec : profiler.intervals()) {
        EXPECT_DOUBLE_EQ(rec.accl, kAccelLatency);
        EXPECT_EQ(rec.committedUops, 9u);
    }
    // Intervals tile the committed stream: each begins at the previous
    // accelerator commit.
    EXPECT_EQ(profiler.intervals()[1].beginCycle,
              profiler.intervals()[0].endCycle);
    EXPECT_EQ(profiler.intervals()[2].beginCycle,
              profiler.intervals()[1].endCycle);

    obs::IntervalSummary summary = profiler.summary();
    EXPECT_EQ(summary.count, 3u);
    EXPECT_DOUBLE_EQ(summary.mean.accl, kAccelLatency);
    EXPECT_DOUBLE_EQ(summary.meanUops, 9.0);
    EXPECT_EQ(summary.tailUops, 0u);
}

TEST(IntervalProfiler, ModelTermsPerModeMapping)
{
    model::IntervalTimes times{};
    times.nonAccl = 100.0;
    times.accl = 10.0;
    times.drain = 30.0;
    times.commit = 8.0;

    obs::IntervalBreakdown lt =
        obs::modelTerms(times, model::TcaMode::L_T);
    EXPECT_DOUBLE_EQ(lt.nonAccl, 100.0);
    EXPECT_DOUBLE_EQ(lt.accl, 10.0);
    EXPECT_DOUBLE_EQ(lt.drain, 0.0);  // leading overlap hides drain
    EXPECT_DOUBLE_EQ(lt.commit, 0.0); // trailing overlap hides commit

    obs::IntervalBreakdown nlt =
        obs::modelTerms(times, model::TcaMode::NL_T);
    EXPECT_DOUBLE_EQ(nlt.drain, 30.0);
    EXPECT_DOUBLE_EQ(nlt.commit, 8.0);

    obs::IntervalBreakdown lnt =
        obs::modelTerms(times, model::TcaMode::L_NT);
    EXPECT_DOUBLE_EQ(lnt.drain, 0.0);
    EXPECT_DOUBLE_EQ(lnt.commit, 8.0);

    obs::IntervalBreakdown nlnt =
        obs::modelTerms(times, model::TcaMode::NL_NT);
    EXPECT_DOUBLE_EQ(nlnt.drain, 30.0);
    EXPECT_DOUBLE_EQ(nlnt.commit, 16.0); // eq. 4: 2 * t_commit
    EXPECT_DOUBLE_EQ(nlnt.sum(), 100.0 + 10.0 + 30.0 + 16.0);
}

TEST(IntervalProfiler, ToJsonRoundTrips)
{
    accel::FixedLatencyTca tca(kAccelLatency);
    trace::VectorTrace trace;
    for (int i = 0; i < 8; ++i)
        trace.push(alu());
    trace.push(accelOp(0));
    obs::IntervalProfiler profiler =
        profileRun(trace, model::TcaMode::NL_NT, tca);

    std::ostringstream os;
    JsonWriter json(os);
    profiler.toJson(json);
    EXPECT_TRUE(json.complete());

    JsonValue doc;
    std::string error;
    ASSERT_TRUE(parseJson(os.str(), doc, &error)) << error;
    const JsonValue *summary = doc.find("summary");
    ASSERT_NE(summary, nullptr);
    const JsonValue *count = summary->find("intervals");
    ASSERT_NE(count, nullptr);
    EXPECT_DOUBLE_EQ(count->number, 1.0);
    const JsonValue *intervals = doc.find("intervals");
    ASSERT_NE(intervals, nullptr);
    ASSERT_EQ(intervals->items.size(), 1u);
    const JsonValue *accl = intervals->items[0].find("t_accl");
    ASSERT_NE(accl, nullptr);
    EXPECT_DOUBLE_EQ(accl->number, double(kAccelLatency));
}
