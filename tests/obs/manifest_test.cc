/**
 * @file
 * RunManifest and run-artifact tests: the manifest always emits valid
 * JSON (checked with the library's own parser), overwriting a key
 * keeps its position, and writeRunArtifacts() honours TCA_OUT_DIR.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "obs/manifest.hh"
#include "stats/stats.hh"
#include "util/json.hh"

using namespace tca;

namespace {

std::string
slurp(const std::filesystem::path &path)
{
    std::ifstream in(path);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

/** Scoped TCA_OUT_DIR override that restores the old value. */
class ScopedOutDir
{
  public:
    explicit ScopedOutDir(const char *value)
    {
        if (const char *old = std::getenv("TCA_OUT_DIR"))
            saved = old;
        if (value)
            setenv("TCA_OUT_DIR", value, 1);
        else
            unsetenv("TCA_OUT_DIR");
    }
    ~ScopedOutDir()
    {
        if (saved.empty())
            unsetenv("TCA_OUT_DIR");
        else
            setenv("TCA_OUT_DIR", saved.c_str(), 1);
    }

  private:
    std::string saved;
};

} // anonymous namespace

TEST(RunManifest, StandardFieldsAndTypedValues)
{
    obs::RunManifest manifest("unit-test");
    manifest.set("seed", uint64_t{7});
    manifest.set("speedup", 1.25);
    manifest.set("functional_ok", true);
    manifest.setRawJson("modes", "[\"L_T\", \"NL_NT\"]");

    JsonValue doc;
    std::string error;
    ASSERT_TRUE(parseJson(manifest.str(), doc, &error)) << error;
    ASSERT_TRUE(doc.isObject());
    EXPECT_EQ(doc.find("run")->str, "unit-test");
    EXPECT_EQ(doc.find("tool")->str, "tcasim");
    // Baked in at configure time; never empty even outside git.
    ASSERT_NE(doc.find("version"), nullptr);
    EXPECT_FALSE(doc.find("version")->str.empty());
    EXPECT_STREQ(obs::RunManifest::buildVersion(),
                 doc.find("version")->str.c_str());
    // ISO-8601 UTC stamp, e.g. 2026-08-05T12:00:00Z.
    const std::string &stamp = doc.find("wall_time")->str;
    ASSERT_EQ(stamp.size(), 20u);
    EXPECT_EQ(stamp[4], '-');
    EXPECT_EQ(stamp[10], 'T');
    EXPECT_EQ(stamp.back(), 'Z');

    EXPECT_DOUBLE_EQ(doc.find("seed")->number, 7.0);
    EXPECT_DOUBLE_EQ(doc.find("speedup")->number, 1.25);
    EXPECT_TRUE(doc.find("functional_ok")->boolean);
    const JsonValue *modes = doc.find("modes");
    ASSERT_NE(modes, nullptr);
    ASSERT_TRUE(modes->isArray());
    ASSERT_EQ(modes->items.size(), 2u);
    EXPECT_EQ(modes->items[1].str, "NL_NT");
}

TEST(RunManifest, OverwriteKeepsFirstPosition)
{
    obs::RunManifest manifest("overwrite");
    manifest.set("alpha", uint64_t{1});
    manifest.set("beta", uint64_t{2});
    manifest.set("alpha", "updated");

    std::string text = manifest.str();
    size_t alpha_pos = text.find("\"alpha\"");
    size_t beta_pos = text.find("\"beta\"");
    ASSERT_NE(alpha_pos, std::string::npos);
    ASSERT_NE(beta_pos, std::string::npos);
    EXPECT_LT(alpha_pos, beta_pos);
    // Only one alpha entry remains, with the new value.
    EXPECT_EQ(text.find("\"alpha\"", alpha_pos + 1),
              std::string::npos);
    JsonValue doc;
    ASSERT_TRUE(parseJson(text, doc));
    EXPECT_EQ(doc.find("alpha")->str, "updated");
}

TEST(RunManifest, ArtifactDirDisabledWithoutEnv)
{
    ScopedOutDir scope(nullptr);
    EXPECT_EQ(obs::artifactDir("nope"), "");
    obs::RunManifest manifest("nope");
    EXPECT_EQ(obs::writeRunArtifacts(manifest, {}), "");
}

TEST(RunManifest, WriteRunArtifactsProducesParseableFiles)
{
    std::filesystem::path base =
        std::filesystem::temp_directory_path() / "tca_obs_test_out";
    std::filesystem::remove_all(base);
    ScopedOutDir scope(base.c_str());

    stats::Counter commits;
    commits.inc(42);
    stats::Distribution latency(10, 4);
    latency.sample(5.0);
    latency.sample(25.0);
    stats::Group group("core");
    group.addCounter("commits", &commits, "committed uops");
    group.addDistribution("accel_latency", &latency, "cycles");

    obs::RunManifest manifest("artifact-test");
    manifest.set("seed", uint64_t{13});
    std::string dir = obs::writeRunArtifacts(manifest, {&group});
    ASSERT_FALSE(dir.empty());
    EXPECT_EQ(dir, (base / "artifact-test").string());

    JsonValue doc;
    std::string error;
    ASSERT_TRUE(parseJson(slurp(dir + "/manifest.json"), doc, &error))
        << error;
    EXPECT_EQ(doc.find("run")->str, "artifact-test");
    EXPECT_DOUBLE_EQ(doc.find("seed")->number, 13.0);

    JsonValue stats_doc;
    ASSERT_TRUE(
        parseJson(slurp(dir + "/stats.json"), stats_doc, &error))
        << error;
    const JsonValue *core = stats_doc.find("core");
    ASSERT_NE(core, nullptr);
    EXPECT_DOUBLE_EQ(core->find("commits")->number, 42.0);
    const JsonValue *dist = core->find("accel_latency");
    ASSERT_NE(dist, nullptr);
    EXPECT_DOUBLE_EQ(dist->find("samples")->number, 2.0);

    std::filesystem::remove_all(base);
}
