/**
 * @file
 * PipeViewWriter tests: ring-buffer retention semantics and both
 * render formats (gem5 O3PipeView text and CSV).
 */

#include <gtest/gtest.h>

#include <sstream>

#include "obs/pipeview.hh"

using namespace tca;

namespace {

obs::UopLifecycle
uop(uint64_t seq)
{
    obs::UopLifecycle u;
    u.seq = seq;
    u.cls = trace::OpClass::IntAlu;
    u.addr = 0x1000 + seq * 4;
    u.dispatch = seq;
    u.issue = seq + 1;
    u.complete = seq + 2;
    u.commit = seq + 3;
    return u;
}

size_t
countLines(const std::string &text)
{
    size_t lines = 0;
    for (char c : text)
        if (c == '\n')
            ++lines;
    return lines;
}

} // anonymous namespace

TEST(PipeView, RingKeepsNewestOldestFirst)
{
    obs::PipeViewWriter writer(4);
    EXPECT_EQ(writer.size(), 0u);
    for (uint64_t seq = 0; seq < 6; ++seq)
        writer.onCommit(uop(seq));

    EXPECT_EQ(writer.size(), 4u);
    EXPECT_EQ(writer.totalCommitted(), 6u);

    std::vector<obs::UopLifecycle> snap = writer.snapshot();
    ASSERT_EQ(snap.size(), 4u);
    for (size_t i = 0; i < snap.size(); ++i)
        EXPECT_EQ(snap[i].seq, 2 + i); // oldest two overwritten
}

TEST(PipeView, PartialWindowSnapshot)
{
    obs::PipeViewWriter writer(8);
    for (uint64_t seq = 0; seq < 3; ++seq)
        writer.onCommit(uop(seq));
    EXPECT_EQ(writer.size(), 3u);
    EXPECT_EQ(writer.totalCommitted(), 3u);
    std::vector<obs::UopLifecycle> snap = writer.snapshot();
    ASSERT_EQ(snap.size(), 3u);
    EXPECT_EQ(snap.front().seq, 0u);
    EXPECT_EQ(snap.back().seq, 2u);
}

TEST(PipeView, RunBeginResetsRetainedWindow)
{
    obs::PipeViewWriter writer(4);
    for (uint64_t seq = 0; seq < 4; ++seq)
        writer.onCommit(uop(seq));
    writer.onRunBegin(obs::RunContext{});
    EXPECT_EQ(writer.size(), 0u);
    EXPECT_EQ(writer.totalCommitted(), 0u);
    writer.onCommit(uop(9));
    ASSERT_EQ(writer.snapshot().size(), 1u);
    EXPECT_EQ(writer.snapshot()[0].seq, 9u);
}

TEST(PipeView, O3PipeViewFormat)
{
    obs::PipeViewWriter writer(8);
    writer.onCommit(uop(0));
    writer.onCommit(uop(1));

    std::ostringstream os;
    writer.write(os, obs::PipeViewFormat::O3PipeView);
    std::string text = os.str();

    // Each uop renders the gem5 stage lines, fetch through retire.
    EXPECT_NE(text.find("O3PipeView:fetch:0:"), std::string::npos);
    EXPECT_NE(text.find("O3PipeView:decode:"), std::string::npos);
    EXPECT_NE(text.find("O3PipeView:rename:"), std::string::npos);
    EXPECT_NE(text.find("O3PipeView:dispatch:"), std::string::npos);
    EXPECT_NE(text.find("O3PipeView:issue:"), std::string::npos);
    EXPECT_NE(text.find("O3PipeView:complete:"), std::string::npos);
    EXPECT_NE(text.find("O3PipeView:retire:"), std::string::npos);
    // Two records -> two fetch and two retire lines.
    EXPECT_EQ(text.find("O3PipeView:fetch:"),
              text.rfind("O3PipeView:fetch:0:"));
    EXPECT_NE(text.find("O3PipeView:fetch:1:"), std::string::npos);
}

TEST(PipeView, CsvFormat)
{
    obs::PipeViewWriter writer(8);
    writer.onCommit(uop(3));
    writer.onCommit(uop(4));

    std::ostringstream os;
    writer.write(os, obs::PipeViewFormat::Csv);
    std::string text = os.str();

    EXPECT_EQ(text.rfind("seq,class,addr,dispatch,issue,complete,"
                         "retire\n", 0), 0u);
    EXPECT_EQ(countLines(text), 3u); // header + 2 records
    EXPECT_NE(text.find("3,"), std::string::npos);
    EXPECT_NE(text.find(",4,5,6\n"), std::string::npos); // uop 3 timing
}
