/**
 * @file
 * Stat-diff tests (the library behind tools/tca_compare): direction
 * inference, JSON flattening, and the improved / regressed / missing
 * classifications with their effect on the exit-code gate.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "obs/stat_diff.hh"

using namespace tca;
using namespace tca::obs;

namespace {

/** The delta for one path, which must exist. */
const StatDelta &
deltaFor(const DiffReport &report, const std::string &path)
{
    for (const StatDelta &d : report.deltas) {
        if (d.path == path)
            return d;
    }
    ADD_FAILURE() << "no delta for " << path;
    static StatDelta missing;
    return missing;
}

} // anonymous namespace

TEST(StatDiff, InferDirectionFromNameTokens)
{
    using MD = MetricDirection;
    EXPECT_EQ(inferDirection("metrics.uops_per_sec.median"),
              MD::HigherIsBetter);
    EXPECT_EQ(inferDirection("L_T.sim_speedup"), MD::HigherIsBetter);
    EXPECT_EQ(inferDirection("model_error.NL_T.mean_abs_error_percent"),
              MD::LowerIsBetter);
    EXPECT_EQ(inferDirection("metrics.sim_cycles"), MD::LowerIsBetter);
    EXPECT_EQ(inferDirection("metrics.wall_seconds.median"),
              MD::LowerIsBetter);
    EXPECT_EQ(inferDirection("NL_T.accel_latency_p99"),
              MD::LowerIsBetter);
    EXPECT_EQ(inferDirection("bench_schema"), MD::Unknown);
}

TEST(StatDiff, ThroughputAndSpreadTokensDisambiguate)
{
    using MD = MetricDirection;
    // Simulator-throughput metrics gate on higher-is-better...
    EXPECT_EQ(inferDirection("metrics.sim_uops_per_sec"),
              MD::HigherIsBetter);
    EXPECT_EQ(inferDirection("heap_cold.metrics.uops_per_sec.mean"),
              MD::HigherIsBetter);
    EXPECT_EQ(inferDirection("L_NT.measured_speedup"),
              MD::HigherIsBetter);
    // ...but their error/spread companions must not: a growing MAD on
    // a throughput metric is a regression, and a "speedup_error" is an
    // error first, a speedup second.
    EXPECT_EQ(inferDirection("metrics.uops_per_sec.mad"),
              MD::LowerIsBetter);
    EXPECT_EQ(inferDirection("model_error.L_T.speedup_error"),
              MD::LowerIsBetter);
    EXPECT_EQ(inferDirection("metrics.warmup_seconds"),
              MD::LowerIsBetter);
    EXPECT_EQ(inferDirection("metrics.wall_seconds.mad"),
              MD::LowerIsBetter);
}

TEST(StatDiff, ConflictsAreLowerIsBetter)
{
    using MD = MetricDirection;
    EXPECT_EQ(inferDirection("mem.dram.bank_conflicts"),
              MD::LowerIsBetter);
    EXPECT_EQ(inferDirection("cpu.port_arbiter.conflicts"),
              MD::LowerIsBetter);
    EXPECT_EQ(inferDirection("cpu.core.rob.full_stalls"),
              MD::LowerIsBetter);
    EXPECT_EQ(inferDirection("mem.l1.misses"), MD::LowerIsBetter);
}

TEST(StatDiff, HostAndRssStatsAreInformational)
{
    using MD = MetricDirection;
    // Host self-profiling varies across machines; it must never gate
    // CI even though "cycles"/"seconds" normally read lower-is-better.
    EXPECT_EQ(inferDirection("host.perf.cycles"), MD::Unknown);
    EXPECT_EQ(inferDirection("host.user_seconds"), MD::Unknown);
    EXPECT_EQ(inferDirection("host.sys_seconds"), MD::Unknown);
    EXPECT_EQ(inferDirection("host.max_rss_bytes"), MD::Unknown);
    EXPECT_EQ(inferDirection("scenario.host.perf.cache_misses"),
              MD::Unknown);
    EXPECT_EQ(inferDirection("metrics.peak_rss_bytes"), MD::Unknown);

    std::map<std::string, double> old_stats{
        {"host.perf.cycles", 1000.0}};
    std::map<std::string, double> new_stats{
        {"host.perf.cycles", 5000.0}}; // +400% on another machine
    DiffReport report = diffStats(old_stats, new_stats, {});
    EXPECT_EQ(deltaFor(report, "host.perf.cycles").status,
              DiffStatus::Changed);
    EXPECT_FALSE(report.failed());
}

TEST(StatDiff, HostRegionsAreInformationalExceptOverhead)
{
    using MD = MetricDirection;
    // The host.regions phase-attribution subtree (TCA_PROF) is host
    // timing, so informational like the rest of the host block...
    EXPECT_EQ(inferDirection("host.regions.scenario.total_seconds"),
              MD::Unknown);
    EXPECT_EQ(inferDirection(
                  "host.regions.scenario/repeat.self_seconds"),
              MD::Unknown);
    EXPECT_EQ(inferDirection("host.regions.scenario.count"),
              MD::Unknown);
    EXPECT_EQ(inferDirection(
                  "host.regions.scenario/repeat/core_run.cycles"),
              MD::Unknown);
    EXPECT_EQ(inferDirection("host.regions.meta.wall_seconds"),
              MD::Unknown);
    // ...except the profiler's own bookkeeping cost, which this repo
    // controls: less is better, and CI's overhead diff gates on it.
    EXPECT_EQ(inferDirection("host.regions.meta.overhead_seconds"),
              MD::LowerIsBetter);
    EXPECT_EQ(inferDirection(
                  "sim_throughput.host.regions.meta.overhead_seconds"),
              MD::LowerIsBetter);
}

TEST(StatDiff, HostEfficiencyRatiosGateLowerIsBetter)
{
    using MD = MetricDirection;
    // Work-normalized host ratios divide out runner speed: they track
    // the simulator's own memory behaviour, so they gate like costs
    // even though the raw counters they derive from stay informational.
    EXPECT_EQ(inferDirection("host.cache_misses_per_kuop"),
              MD::LowerIsBetter);
    EXPECT_EQ(inferDirection("host.instructions_per_uop"),
              MD::LowerIsBetter);
    EXPECT_EQ(inferDirection(
                  "sim_throughput.host.cache_misses_per_kuop"),
              MD::LowerIsBetter);
    // The raw inputs remain informational.
    EXPECT_EQ(inferDirection("host.perf.cache_misses"), MD::Unknown);
    EXPECT_EQ(inferDirection("host.perf.instructions"), MD::Unknown);

    // A regression in the ratio fails a diff that watches it.
    std::map<std::string, double> old_stats{
        {"host.cache_misses_per_kuop", 10.0}};
    std::map<std::string, double> new_stats{
        {"host.cache_misses_per_kuop", 20.0}};
    DiffReport report = diffStats(old_stats, new_stats, {});
    EXPECT_EQ(deltaFor(report, "host.cache_misses_per_kuop").status,
              DiffStatus::Regressed);
    EXPECT_TRUE(report.failed());
}

TEST(StatDiff, TelemetryStatsAreInformationalExceptOverhead)
{
    using MD = MetricDirection;
    // Telemetry bookkeeping counts stream volume (epochs, heartbeats,
    // records), not artifact quality — and must stay informational
    // even when a leaf name matches a cost token ("sample_cycles").
    EXPECT_EQ(inferDirection("telemetry.epochs"), MD::Unknown);
    EXPECT_EQ(inferDirection("telemetry.heartbeats"), MD::Unknown);
    EXPECT_EQ(inferDirection("telemetry.records"), MD::Unknown);
    EXPECT_EQ(inferDirection("metrics.telemetry.sample_cycles"),
              MD::Unknown);
    // ...the one exception: the stream's own publish cost is a real
    // overhead, so less of it is better.
    EXPECT_EQ(inferDirection("telemetry.epoch_overhead_seconds"),
              MD::LowerIsBetter);
    EXPECT_EQ(inferDirection("bench.telemetry.overhead_seconds"),
              MD::LowerIsBetter);
    // A workload that merely mentions telemetry elsewhere in the path
    // is not covered: only a telemetry.* prefix or .telemetry. token.
    EXPECT_EQ(inferDirection("telemetry_wall_seconds"),
              MD::LowerIsBetter);
}

TEST(StatDiff, PrefixesRestrictTheComparisonSurface)
{
    std::map<std::string, double> old_stats{
        {"cpu.core.rob.full_stalls", 100.0},
        {"mem.l1.misses", 50.0},
    };
    std::map<std::string, double> new_stats{
        {"cpu.core.rob.full_stalls", 100.0},
        {"mem.l1.misses", 500.0}, // regression, but outside --prefix
    };

    DiffOptions options;
    options.prefixes = {"cpu."};
    DiffReport report = diffStats(old_stats, new_stats, options);
    // Unlike watch, stats outside the prefix are not even reported.
    for (const StatDelta &d : report.deltas)
        EXPECT_EQ(d.path.rfind("cpu.", 0), 0u) << d.path;
    EXPECT_EQ(report.numRegressions, 0u);
    EXPECT_FALSE(report.failed());

    // Without the prefix filter the same inputs fail.
    report = diffStats(old_stats, new_stats, {});
    EXPECT_TRUE(report.failed());
}

TEST(StatDiff, FlattenNumericLeavesOnly)
{
    JsonValue doc;
    std::string error;
    ASSERT_TRUE(parseJson(R"({
        "run": "x",
        "quick": true,
        "metrics": {"sim_cycles": 100, "nested": {"mad": 0.5}},
        "samples": [1, 2, 3]
    })", doc, &error)) << error;

    std::map<std::string, double> flat = flattenNumeric(doc);
    ASSERT_EQ(flat.size(), 2u); // strings/bools/arrays skipped
    EXPECT_EQ(flat.at("metrics.sim_cycles"), 100.0);
    EXPECT_EQ(flat.at("metrics.nested.mad"), 0.5);
}

TEST(StatDiff, ClassifiesImprovedRegressedUnchanged)
{
    std::map<std::string, double> old_stats{
        {"a.sim_cycles", 1000.0},  // lower is better
        {"b.uops_per_sec", 500.0}, // higher is better
        {"c.sim_cycles", 1000.0},
    };
    std::map<std::string, double> new_stats{
        {"a.sim_cycles", 800.0},  // -20%: improved
        {"b.uops_per_sec", 400.0}, // -20%: regressed
        {"c.sim_cycles", 1010.0},  // +1%: inside threshold
    };
    DiffReport report = diffStats(old_stats, new_stats, {});

    EXPECT_EQ(deltaFor(report, "a.sim_cycles").status,
              DiffStatus::Improved);
    EXPECT_EQ(deltaFor(report, "b.uops_per_sec").status,
              DiffStatus::Regressed);
    EXPECT_EQ(deltaFor(report, "c.sim_cycles").status,
              DiffStatus::Unchanged);
    EXPECT_EQ(report.numRegressions, 1u);
    EXPECT_EQ(report.numImprovements, 1u);
    EXPECT_TRUE(report.failed());
}

TEST(StatDiff, MissingStatsGateOnlyWhenWatched)
{
    std::map<std::string, double> old_stats{
        {"model_error.NL_T.mean_abs_error_percent", 5.0}};
    std::map<std::string, double> new_stats{
        {"metrics.sim_cycles", 100.0}};

    DiffReport report = diffStats(old_stats, new_stats, {});
    EXPECT_EQ(
        deltaFor(report, "model_error.NL_T.mean_abs_error_percent")
            .status,
        DiffStatus::MissingInNew);
    EXPECT_EQ(deltaFor(report, "metrics.sim_cycles").status,
              DiffStatus::MissingInOld);
    EXPECT_EQ(report.numMissing, 1u);
    EXPECT_TRUE(report.failed());

    // The disappeared stat is outside the watch list: report-only.
    DiffOptions watch_other;
    watch_other.watch = {"metrics"};
    report = diffStats(old_stats, new_stats, watch_other);
    EXPECT_EQ(report.numMissing, 0u);
    EXPECT_FALSE(report.failed());
}

TEST(StatDiff, WatchPrefixLimitsTheGate)
{
    std::map<std::string, double> old_stats{
        {"metrics.wall_seconds.median", 1.0},
        {"model_error.NL_T.mean_abs_error_percent", 5.0},
    };
    std::map<std::string, double> new_stats{
        {"metrics.wall_seconds.median", 2.0},  // +100% perf regression
        {"model_error.NL_T.mean_abs_error_percent", 5.0},
    };

    // Unwatched perf regression: reported but the gate stays green.
    DiffOptions options;
    options.watch = {"model_error"};
    DiffReport report = diffStats(old_stats, new_stats, options);
    EXPECT_EQ(deltaFor(report, "metrics.wall_seconds.median").status,
              DiffStatus::Regressed);
    EXPECT_EQ(report.numRegressions, 0u);
    EXPECT_FALSE(report.failed());

    // Model error grows: the same inputs with error regressed fail.
    new_stats["model_error.NL_T.mean_abs_error_percent"] = 9.0;
    report = diffStats(old_stats, new_stats, options);
    EXPECT_EQ(report.numRegressions, 1u);
    EXPECT_TRUE(report.failed());
}

TEST(StatDiff, ThresholdIsRelative)
{
    std::map<std::string, double> old_stats{{"x.sim_cycles", 100.0}};
    std::map<std::string, double> new_stats{{"x.sim_cycles", 104.0}};

    DiffOptions tight;
    tight.thresholdPercent = 2.0;
    EXPECT_EQ(diffStats(old_stats, new_stats, tight).numRegressions, 1u);

    DiffOptions loose;
    loose.thresholdPercent = 10.0;
    EXPECT_EQ(diffStats(old_stats, new_stats, loose).numRegressions, 0u);
}

TEST(StatDiff, UnknownDirectionNeverGates)
{
    std::map<std::string, double> old_stats{{"bench_schema", 1.0}};
    std::map<std::string, double> new_stats{{"bench_schema", 2.0}};
    DiffReport report = diffStats(old_stats, new_stats, {});
    EXPECT_EQ(deltaFor(report, "bench_schema").status,
              DiffStatus::Changed);
    EXPECT_FALSE(report.failed());
}

TEST(StatDiff, DiffJsonDocumentsReportsParseErrors)
{
    DiffReport report;
    std::string error;
    EXPECT_FALSE(
        diffJsonDocuments("{]", "{}", {}, report, &error));
    EXPECT_NE(error.find("old document"), std::string::npos);
    EXPECT_FALSE(
        diffJsonDocuments("{}", "nope", {}, report, &error));
    EXPECT_NE(error.find("new document"), std::string::npos);
    EXPECT_TRUE(diffJsonDocuments("{\"a.cycles\": 1}",
                                  "{\"a.cycles\": 1}", {}, report,
                                  &error));
}

TEST(StatDiff, PrintDiffRendersChangedRows)
{
    std::map<std::string, double> old_stats{
        {"a.sim_cycles", 100.0}, {"b.sim_cycles", 100.0}};
    std::map<std::string, double> new_stats{
        {"a.sim_cycles", 200.0}, {"b.sim_cycles", 100.0}};
    DiffReport report = diffStats(old_stats, new_stats, {});

    std::ostringstream os;
    printDiff(report, os);
    EXPECT_NE(os.str().find("a.sim_cycles"), std::string::npos);
    EXPECT_NE(os.str().find("REGRESSED"), std::string::npos);
    // Unchanged rows suppressed by default.
    EXPECT_EQ(os.str().find("b.sim_cycles"), std::string::npos);

    std::ostringstream all;
    printDiff(report, all, false);
    EXPECT_NE(all.str().find("b.sim_cycles"), std::string::npos);
}
