/**
 * @file
 * obs-side stats registry integration: writeRunArtifacts renders a
 * snapshot as the nested stats.json tree, and a parallel experiment
 * batch's merged stats tree is byte-identical between TCA_JOBS=1 and
 * TCA_JOBS=8.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "obs/stats_registry.hh"
#include "util/json.hh"
#include "workloads/experiment.hh"
#include "workloads/synthetic.hh"

using namespace tca;

namespace {

/** Scoped TCA_OUT_DIR override that restores the old value. */
class ScopedOutDir
{
  public:
    explicit ScopedOutDir(const std::string &value)
    {
        if (const char *old = std::getenv("TCA_OUT_DIR"))
            saved = old;
        setenv("TCA_OUT_DIR", value.c_str(), 1);
    }

    ~ScopedOutDir()
    {
        if (saved.empty())
            unsetenv("TCA_OUT_DIR");
        else
            setenv("TCA_OUT_DIR", saved.c_str(), 1);
    }

  private:
    std::string saved;
};

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

workloads::WorkloadFactory
statsFactory()
{
    return [](size_t i) {
        workloads::SyntheticConfig conf;
        conf.fillerUops = 3000;
        conf.numInvocations = 6 + static_cast<uint32_t>(2 * i);
        conf.regionUops = 80;
        conf.accelLatency = 30;
        conf.seed = 500 + i;
        return std::make_unique<workloads::SyntheticWorkload>(conf);
    };
}

} // anonymous namespace

TEST(StatsRegistryArtifacts, WritesNestedStatsJson)
{
    std::string dir = ::testing::TempDir() + "/stats_artifacts";
    ScopedOutDir scope(dir);

    stats::Counter stalls;
    stalls.inc(5);
    stats::StatsRegistry registry;
    registry.addCounter("cpu.core.rob.full_stalls", &stalls);
    registry.addFormula("cpu.core.ipc", [] { return 1.25; });

    obs::RunManifest manifest("stats_reg_test");
    std::string written = obs::writeRunArtifacts(manifest, registry);
    ASSERT_FALSE(written.empty());

    JsonValue doc;
    ASSERT_TRUE(parseJson(slurp(written + "/stats.json"), doc));
    const JsonValue *core = doc.find("cpu")->find("core");
    ASSERT_NE(core, nullptr);
    EXPECT_DOUBLE_EQ(core->find("rob")->find("full_stalls")->number,
                     5.0);
    EXPECT_DOUBLE_EQ(core->find("ipc")->number, 1.25);

    // manifest.json rides along, as for every other run artifact.
    JsonValue mdoc;
    ASSERT_TRUE(parseJson(slurp(written + "/manifest.json"), mdoc));
    EXPECT_NE(mdoc.find("run"), nullptr);
}

TEST(StatsRegistryArtifacts, NoOutDirMeansNoWrite)
{
    ScopedOutDir scope("");
    unsetenv("TCA_OUT_DIR");
    stats::StatsRegistry registry;
    obs::RunManifest manifest("stats_reg_unwritten");
    EXPECT_EQ(obs::writeRunArtifacts(manifest, registry), "");
}

TEST(StatsRegistryExperiment, CollectStatsPopulatesRunTrees)
{
    workloads::SyntheticConfig conf;
    conf.fillerUops = 3000;
    conf.numInvocations = 8;
    conf.regionUops = 80;
    conf.accelLatency = 30;
    conf.seed = 11;
    workloads::SyntheticWorkload workload(conf);

    workloads::ExperimentOptions options;
    options.collectStats = true;
    workloads::ExperimentResult result = workloads::runExperiment(
        workload, cpu::a72CoreConfig(), options);

    // Baseline carries the machine tree but no accelerator subtree.
    EXPECT_GE(result.baselineStats.numStats(), 40u);
    EXPECT_TRUE(result.baselineStats.has("cpu.core.cycles"));
    EXPECT_TRUE(result.baselineStats.has("mem.l1.mpki"));
    EXPECT_FALSE(
        result.baselineStats.has("accel.fixed_latency_tca.invocations"));
    EXPECT_DOUBLE_EQ(result.baselineStats.valueOf("cpu.core.cycles"),
                     static_cast<double>(result.baseline.cycles));

    // Mode runs add the device and must agree with SimResult.
    for (const workloads::ModeOutcome &mode : result.modes) {
        EXPECT_TRUE(mode.stats.has("cpu.core.rob.full_stalls"));
        EXPECT_DOUBLE_EQ(
            mode.stats.valueOf("accel.fixed_latency_tca.invocations"),
            static_cast<double>(mode.sim.accelInvocations));
        EXPECT_DOUBLE_EQ(mode.stats.valueOf("cpu.core.cycles"),
                         static_cast<double>(mode.sim.cycles));
    }
}

TEST(StatsRegistryExperiment, DisabledByDefault)
{
    workloads::SyntheticConfig conf;
    conf.fillerUops = 1000;
    conf.numInvocations = 2;
    conf.seed = 3;
    workloads::SyntheticWorkload workload(conf);

    workloads::ExperimentResult result = workloads::runExperiment(
        workload, cpu::a72CoreConfig(), {});
    EXPECT_TRUE(result.baselineStats.empty());
    for (const workloads::ModeOutcome &mode : result.modes)
        EXPECT_TRUE(mode.stats.empty());
}

TEST(StatsRegistryDeterminism, BatchStatsJsonByteIdenticalAcrossJobs)
{
    auto run = [](size_t jobs) {
        workloads::ExperimentOptions options;
        options.collectStats = true;
        workloads::ExperimentBatch batch = workloads::runExperimentBatch(
            5, statsFactory(), cpu::a72CoreConfig(), options, jobs);
        return batch.stats.str();
    };
    std::string serial = run(1);
    std::string parallel = run(8);
    EXPECT_FALSE(serial.empty());
    EXPECT_EQ(serial, parallel);
    // The tree must actually contain the machine for this to mean
    // anything.
    EXPECT_NE(serial.find("full_stalls"), std::string::npos);
    EXPECT_NE(serial.find("mpki"), std::string::npos);
}
