/**
 * @file
 * Telemetry bus tests: sampler epoch mechanics (including the bulk
 * skip fold matching per-cycle expansion exactly), counter-delta
 * telescoping against a stats registry, the NDJSON schema round trip
 * and golden lines, OpenMetrics exposition golden + atomic textfile
 * rewrite, environment selection (TCA_TELEMETRY / _PATH / _EPOCH),
 * parallel-batch byte identity for any TCA_JOBS value, bench-harness
 * heartbeats, and the tca_top model + screen golden.
 */

#include <gtest/gtest.h>

#include <fcntl.h>
#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "cpu/core_config.hh"
#include "obs/bench_harness.hh"
#include "obs/event_sink.hh"
#include "obs/telemetry.hh"
#include "obs/telemetry_publishers.hh"
#include "stats/registry.hh"
#include "util/json.hh"
#include "workloads/experiment.hh"
#include "workloads/synthetic.hh"

using namespace tca;
using namespace tca::obs;

namespace {

RunContext
context()
{
    RunContext ctx;
    ctx.coreName = "telemetry-test";
    ctx.stallCauseNames = {"none", "rob_full"};
    return ctx;
}

/** Attach a RingBufferPublisher and hand back its raw pointer. */
RingBufferPublisher *
attachRing(TelemetryBus &bus, size_t capacity = 4096)
{
    auto ring = std::make_unique<RingBufferPublisher>(capacity);
    RingBufferPublisher *raw = ring.get();
    bus.addPublisher(std::move(ring));
    return raw;
}

/** Render a record sequence as the NDJSON stream it would produce. */
std::string
streamOf(const std::deque<TelemetryRecord> &records)
{
    std::string out;
    for (const TelemetryRecord &record : records) {
        out += renderTelemetryNdjson(record);
        out += '\n';
    }
    return out;
}

/** Save/restore the telemetry environment across a test body. */
class EnvGuard
{
  public:
    EnvGuard()
    {
        for (const char *name : kNames) {
            const char *value = std::getenv(name);
            saved.emplace_back(name, value ? std::string(value)
                                           : std::string());
            present.push_back(value != nullptr);
        }
    }

    ~EnvGuard()
    {
        for (size_t i = 0; i < saved.size(); ++i) {
            if (present[i])
                ::setenv(saved[i].first, saved[i].second.c_str(), 1);
            else
                ::unsetenv(saved[i].first);
        }
    }

  private:
    static constexpr const char *kNames[] = {
        "TCA_TELEMETRY", "TCA_TELEMETRY_PATH", "TCA_TELEMETRY_EPOCH",
        "TCA_OUT_DIR",
    };
    std::vector<std::pair<const char *, std::string>> saved;
    std::vector<bool> present;
};

constexpr const char *EnvGuard::kNames[];

} // anonymous namespace

// ---------------------------------------------------------------------
// TelemetryBus
// ---------------------------------------------------------------------

TEST(TelemetryBus, StampsJobTagOnUntaggedRecords)
{
    TelemetryBus bus(100);
    RingBufferPublisher *ring = attachRing(bus);
    bus.setJobTag(3);

    TelemetryRecord untagged;
    untagged.kind = TelemetryKind::Sample;
    bus.publish(untagged); // job < 0: stamped with the bus tag

    TelemetryRecord tagged;
    tagged.kind = TelemetryKind::Sample;
    tagged.job = 7;
    bus.publish(tagged); // already tagged: left alone

    TelemetryRecord replayed;
    replayed.kind = TelemetryKind::Sample;
    replayed.job = -1;
    bus.replay(replayed); // replay never restamps

    ASSERT_EQ(ring->records().size(), 3u);
    EXPECT_EQ(ring->records()[0].job, 3);
    EXPECT_EQ(ring->records()[1].job, 7);
    EXPECT_EQ(ring->records()[2].job, -1);
    EXPECT_EQ(bus.numRecords(), 3u);
    EXPECT_EQ(bus.numSamples(), 3u);
    EXPECT_EQ(bus.numHeartbeats(), 0u);
}

TEST(TelemetryBus, HeartbeatsDriveTheLivenessSignal)
{
    TelemetryBus bus(100);
    EXPECT_LT(bus.secondsSinceLastHeartbeat(), 0.0); // none yet

    TelemetryRecord beat;
    beat.kind = TelemetryKind::Heartbeat;
    beat.scenario = "s";
    bus.publish(beat);

    EXPECT_EQ(bus.numHeartbeats(), 1u);
    double age = bus.secondsSinceLastHeartbeat();
    EXPECT_GE(age, 0.0);
    EXPECT_LT(age, 60.0); // sane: just published
}

// ---------------------------------------------------------------------
// TelemetrySampler
// ---------------------------------------------------------------------

TEST(TelemetrySampler, SealsEpochsIncludingEmptyOnes)
{
    TelemetryBus bus(10);
    RingBufferPublisher *ring = attachRing(bus);
    TelemetrySampler sampler(&bus);
    sampler.setRunLabel("unit");

    sampler.onRunBegin(context());
    sampler.onCycle(0, 1);
    sampler.onCycle(1, 3);
    // Jumping to cycle 35 seals epochs 0..2 (1 and 2 empty).
    sampler.onCycle(35, 2);
    sampler.onRunEnd(36, 5);

    const auto &records = ring->records();
    ASSERT_EQ(records.size(), 6u); // begin, 4 samples, end
    EXPECT_EQ(records.front().kind, TelemetryKind::RunBegin);
    EXPECT_EQ(records.front().run, "unit");
    EXPECT_EQ(records.front().epochCycles, 10u);
    EXPECT_EQ(records.back().kind, TelemetryKind::RunEnd);
    EXPECT_EQ(records.back().totalCycles, 36u);
    EXPECT_EQ(records.back().committedUops, 5u);

    for (size_t i = 1; i <= 4; ++i) {
        EXPECT_EQ(records[i].kind, TelemetryKind::Sample);
        EXPECT_EQ(records[i].epoch, i - 1);
        EXPECT_EQ(records[i].startCycle, (i - 1) * 10);
    }
    EXPECT_EQ(records[1].cycles, 2u);
    EXPECT_EQ(records[1].robOccupancySum, 4u);
    EXPECT_EQ(records[2].cycles, 0u); // sealed empty
    EXPECT_EQ(records[3].cycles, 0u);
    EXPECT_EQ(records[4].cycles, 1u); // the final short epoch
    EXPECT_EQ(records[4].robOccupancySum, 2u);
}

TEST(TelemetrySampler, BulkSkipFoldMatchesPerCycleExpansion)
{
    // The same frozen stretch delivered two ways — one bulk
    // onSkippedCycles call vs. the per-cycle expansion the reference
    // engine produces — must publish byte-identical sample streams.
    auto drive = [](TelemetrySampler &sampler, bool bulk) {
        sampler.onRunBegin(context());
        for (mem::Cycle c = 0; c < 3; ++c)
            sampler.onCycle(c, 5);
        if (bulk) {
            sampler.onSkippedCycles(3, 27, 5, true, 1);
        } else {
            for (mem::Cycle c = 3; c <= 27; ++c) {
                sampler.onDispatchStall(1, c);
                sampler.onCycle(c, 5);
            }
        }
        sampler.onCycle(28, 4);
        sampler.onRunEnd(29, 12);
    };

    TelemetryBus bulk_bus(10), ref_bus(10);
    RingBufferPublisher *bulk_ring = attachRing(bulk_bus);
    RingBufferPublisher *ref_ring = attachRing(ref_bus);
    TelemetrySampler bulk_sampler(&bulk_bus), ref_sampler(&ref_bus);
    bulk_sampler.setRunLabel("skip");
    ref_sampler.setRunLabel("skip");

    EXPECT_TRUE(bulk_sampler.wantsBulkSkips());
    drive(bulk_sampler, true);
    drive(ref_sampler, false);

    EXPECT_EQ(streamOf(bulk_ring->records()),
              streamOf(ref_ring->records()));
    // Spot-check one mid-skip epoch: cycles 10..19 all stalled.
    ASSERT_GE(bulk_ring->records().size(), 4u);
    const TelemetryRecord &epoch1 = bulk_ring->records()[2];
    EXPECT_EQ(epoch1.kind, TelemetryKind::Sample);
    EXPECT_EQ(epoch1.cycles, 10u);
    EXPECT_EQ(epoch1.robOccupancySum, 50u);
    ASSERT_EQ(epoch1.stallCycles.size(), 2u);
    EXPECT_EQ(epoch1.stallCycles[1], 10u);
}

TEST(TelemetrySampler, RegistryDeltasTelescopeToFinalValues)
{
    stats::Counter commits, misses;
    misses.inc(1000); // mid-flight before the run: not part of deltas
    stats::StatsRegistry registry;
    registry.addCounter("core.commits", &commits);
    registry.addCounter("mem.misses", &misses);

    TelemetryBus bus(10);
    RingBufferPublisher *ring = attachRing(bus);
    TelemetrySampler sampler(&bus);
    sampler.setRunLabel("deltas");
    sampler.attachRegistry(&registry);

    sampler.onRunBegin(context());
    for (mem::Cycle c = 0; c < 10; ++c) {
        sampler.onCycle(c, 1);
        commits.inc();
        if (c < 3)
            misses.inc();
    }
    for (mem::Cycle c = 10; c < 15; ++c) {
        sampler.onCycle(c, 1);
        commits.inc(2);
    }
    sampler.onRunEnd(15, 20);
    sampler.attachRegistry(nullptr);

    const auto &records = ring->records();
    ASSERT_EQ(records.size(), 4u);
    ASSERT_EQ(records[0].counterPaths.size(), 2u);
    EXPECT_EQ(records[0].counterPaths[0], "core.commits");
    EXPECT_EQ(records[0].counterPaths[1], "mem.misses");

    ASSERT_EQ(records[1].counterDeltas.size(), 2u);
    EXPECT_EQ(records[1].counterDeltas[0], 10u);
    EXPECT_EQ(records[1].counterDeltas[1], 3u);
    ASSERT_EQ(records[2].counterDeltas.size(), 2u);
    EXPECT_EQ(records[2].counterDeltas[0], 10u);
    EXPECT_EQ(records[2].counterDeltas[1], 0u);

    // Telescoping: deltas sum to the in-run increments exactly.
    EXPECT_EQ(records[1].counterDeltas[0] + records[2].counterDeltas[0],
              commits.value());
    EXPECT_EQ(records[1].counterDeltas[1] + records[2].counterDeltas[1],
              misses.value() - 1000);
}

TEST(TelemetrySampler, OptsOutOfPerUopEventsButMultiSinkStillWantsThem)
{
    // The sampler never uses the per-uop bookkeeping events, so the
    // core may skip those emission sites entirely when it is the only
    // sink...
    TelemetryBus bus(10);
    attachRing(bus);
    TelemetrySampler sampler(&bus);
    EXPECT_FALSE(sampler.wantsUopEvents());

    MultiSink alone;
    alone.add(&sampler);
    EXPECT_FALSE(alone.wantsUopEvents());

    // ...but chaining any full-interest sink restores the events for
    // the whole fan-out (default interest is true).
    EventSink full;
    EXPECT_TRUE(full.wantsUopEvents());
    MultiSink mixed;
    mixed.add(&sampler);
    mixed.add(&full);
    EXPECT_TRUE(mixed.wantsUopEvents());
}

// ---------------------------------------------------------------------
// NDJSON schema
// ---------------------------------------------------------------------

TEST(TelemetryNdjson, GoldenLines)
{
    TelemetryRecord begin;
    begin.kind = TelemetryKind::RunBegin;
    begin.run = "heap/L_T";
    begin.job = 2;
    begin.epochCycles = 4096;
    begin.stallCauseNames = {"none", "rob_full"};
    begin.counterPaths = {"cpu.core.commits"};
    EXPECT_EQ(renderTelemetryNdjson(begin),
              "{\"v\":1,\"kind\":\"run_begin\",\"run\":\"heap/L_T\","
              "\"job\":2,\"epoch_cycles\":4096,"
              "\"stall_causes\":[\"none\",\"rob_full\"],"
              "\"counters\":[\"cpu.core.commits\"]}");

    TelemetryRecord sample;
    sample.kind = TelemetryKind::Sample;
    sample.run = "heap/L_T";
    sample.job = 2;
    sample.epoch = 5;
    sample.startCycle = 20480;
    sample.cycles = 4096;
    sample.robOccupancySum = 8192;
    sample.commits = 6000;
    sample.accelStarts = 1;
    sample.accelBusyCycles = 37;
    sample.accelQueuePending = 3;
    sample.stallCycles = {3, 17};
    sample.counterDeltas = {6000};
    EXPECT_EQ(renderTelemetryNdjson(sample),
              "{\"v\":1,\"kind\":\"sample\",\"run\":\"heap/L_T\","
              "\"job\":2,\"epoch\":5,\"start\":20480,\"cycles\":4096,"
              "\"rob_occupancy_sum\":8192,\"commits\":6000,"
              "\"accel_starts\":1,\"accel_busy_cycles\":37,"
              "\"accel_queue_pending\":3,"
              "\"stalls\":[3,17],\"deltas\":[6000]}");

    TelemetryRecord end;
    end.kind = TelemetryKind::RunEnd;
    end.run = "heap/L_T";
    end.job = 2;
    end.totalCycles = 123456;
    end.committedUops = 99999;
    EXPECT_EQ(renderTelemetryNdjson(end),
              "{\"v\":1,\"kind\":\"run_end\",\"run\":\"heap/L_T\","
              "\"job\":2,\"cycles\":123456,\"uops\":99999}");

    // Heartbeats omit unknown ETA (< 0) and unknown throughput (0).
    TelemetryRecord warm;
    warm.kind = TelemetryKind::Heartbeat;
    warm.scenario = "heap_hot";
    warm.phase = "warmup";
    warm.repeat = 1;
    warm.repeats = 2;
    warm.wallSeconds = 0.5;
    EXPECT_EQ(renderTelemetryNdjson(warm),
              "{\"v\":1,\"kind\":\"heartbeat\",\"scenario\":\"heap_hot\","
              "\"phase\":\"warmup\",\"repeat\":1,\"of\":2,"
              "\"wall_seconds\":0.500000}");

    TelemetryRecord beat = warm;
    beat.phase = "repeat";
    beat.etaSeconds = 1.25;
    beat.uopsPerSec = 2.5e6;
    EXPECT_EQ(renderTelemetryNdjson(beat),
              "{\"v\":1,\"kind\":\"heartbeat\",\"scenario\":\"heap_hot\","
              "\"phase\":\"repeat\",\"repeat\":1,\"of\":2,"
              "\"wall_seconds\":0.500000,\"eta_seconds\":1.250000,"
              "\"uops_per_sec\":2500000.0}");
}

TEST(TelemetryNdjson, RoundTripsEveryKind)
{
    std::vector<TelemetryRecord> originals(4);
    originals[0].kind = TelemetryKind::RunBegin;
    originals[0].run = "w/baseline";
    originals[0].job = 1;
    originals[0].epochCycles = 512;
    originals[0].stallCauseNames = {"none", "rob_full"};
    originals[0].counterPaths = {"a.b", "c.d"};

    originals[1].kind = TelemetryKind::Sample;
    originals[1].run = "w/baseline";
    originals[1].job = 1;
    originals[1].epoch = 3;
    originals[1].startCycle = 1536;
    originals[1].cycles = 512;
    originals[1].robOccupancySum = 1024;
    originals[1].commits = 700;
    originals[1].accelStarts = 2;
    originals[1].accelBusyCycles = 64;
    originals[1].accelQueuePending = 1;
    originals[1].stallCycles = {1, 2};
    originals[1].counterDeltas = {700, 5};

    originals[2].kind = TelemetryKind::RunEnd;
    originals[2].run = "w/baseline";
    originals[2].job = 1;
    originals[2].totalCycles = 2000;
    originals[2].committedUops = 1400;

    originals[3].kind = TelemetryKind::Heartbeat;
    originals[3].scenario = "s";
    originals[3].phase = "repeat";
    originals[3].repeat = 2;
    originals[3].repeats = 3;
    originals[3].wallSeconds = 1.5;
    originals[3].etaSeconds = 0.75;
    originals[3].uopsPerSec = 1e6;

    for (const TelemetryRecord &original : originals) {
        std::string line = renderTelemetryNdjson(original);
        TelemetryRecord parsed;
        std::string error;
        ASSERT_TRUE(parseTelemetryLine(line, parsed, &error))
            << line << ": " << error;
        // Rendering the parsed record reproduces the line exactly —
        // the parse lost nothing the schema carries.
        EXPECT_EQ(renderTelemetryNdjson(parsed), line);
    }

    TelemetryRecord parsed;
    std::string error;
    EXPECT_FALSE(parseTelemetryLine("not json", parsed, &error));
    EXPECT_FALSE(parseTelemetryLine("{\"kind\":\"nope\"}", parsed,
                                    &error));
    EXPECT_FALSE(parseTelemetryLine("[1,2]", parsed, &error));
}

TEST(TelemetryNdjson, PublisherDestinations)
{
    // fd:N adopts a descriptor; whole lines land in the file.
    auto dir = std::filesystem::temp_directory_path() /
        "tca_telemetry_fd_test";
    std::filesystem::create_directories(dir);
    std::string path = (dir / "stream.ndjson").string();
    int fd = ::open(path.c_str(), O_CREAT | O_WRONLY | O_TRUNC, 0644);
    ASSERT_GE(fd, 0);

    std::string error;
    auto fd_pub = NdjsonPublisher::open("fd:" + std::to_string(fd),
                                        &error);
    ASSERT_NE(fd_pub, nullptr) << error;
    TelemetryRecord end;
    end.kind = TelemetryKind::RunEnd;
    end.run = "r";
    end.job = 0;
    end.totalCycles = 1;
    end.committedUops = 1;
    fd_pub->publish(end);
    fd_pub->flush();
    ::close(fd);

    std::ifstream in(path);
    std::string line;
    ASSERT_TRUE(std::getline(in, line));
    EXPECT_EQ(line, renderTelemetryNdjson(end));

    // Bad destinations fail with a diagnostic instead of crashing.
    EXPECT_EQ(NdjsonPublisher::open("fd:banana", &error), nullptr);
    EXPECT_FALSE(error.empty());
    EXPECT_EQ(NdjsonPublisher::open(
                  (dir / "missing-subdir" / "x.ndjson").string(),
                  &error),
              nullptr);

    std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------
// OpenMetrics
// ---------------------------------------------------------------------

namespace {

/** The handcrafted record sequence the OpenMetrics goldens use. */
std::vector<TelemetryRecord>
openMetricsFixture()
{
    std::vector<TelemetryRecord> records(4);
    records[0].kind = TelemetryKind::RunBegin;
    records[0].run = "fig5_heap/L_T";
    records[0].job = 0;
    records[0].epochCycles = 4096;
    records[0].stallCauseNames = {"none", "rob_full"};

    records[1].kind = TelemetryKind::Sample;
    records[1].run = "fig5_heap/L_T";
    records[1].job = 0;
    records[1].cycles = 100;
    records[1].robOccupancySum = 400;
    records[1].commits = 50;
    records[1].accelStarts = 2;
    records[1].accelBusyCycles = 30;
    records[1].stallCycles = {5, 10};

    records[2].kind = TelemetryKind::RunEnd;
    records[2].run = "fig5_heap/L_T";
    records[2].job = 0;
    records[2].totalCycles = 100;
    records[2].committedUops = 50;

    records[3].kind = TelemetryKind::Heartbeat;
    records[3].scenario = "heap_hot";
    records[3].phase = "repeat";
    records[3].repeat = 2;
    records[3].repeats = 3;
    records[3].wallSeconds = 1.25;
    return records;
}

} // anonymous namespace

TEST(TelemetryOpenMetrics, RenderTextGolden)
{
    OpenMetricsPublisher publisher("");
    for (const TelemetryRecord &record : openMetricsFixture())
        publisher.publish(record);

    EXPECT_EQ(
        publisher.renderText(),
        "# HELP tca_epochs_total Telemetry epochs sealed\n"
        "# TYPE tca_epochs_total counter\n"
        "tca_epochs_total{run=\"fig5_heap/L_T\",job=\"0\"} 1\n"
        "# HELP tca_cycles_total Simulated cycles observed\n"
        "# TYPE tca_cycles_total counter\n"
        "tca_cycles_total{run=\"fig5_heap/L_T\",job=\"0\"} 100\n"
        "# HELP tca_commits_total Uops committed\n"
        "# TYPE tca_commits_total counter\n"
        "tca_commits_total{run=\"fig5_heap/L_T\",job=\"0\"} 50\n"
        "# HELP tca_accel_starts_total Accelerator invocations started\n"
        "# TYPE tca_accel_starts_total counter\n"
        "tca_accel_starts_total{run=\"fig5_heap/L_T\",job=\"0\"} 2\n"
        "# HELP tca_accel_busy_cycles_total Cycles an accelerator was "
        "busy\n"
        "# TYPE tca_accel_busy_cycles_total counter\n"
        "tca_accel_busy_cycles_total{run=\"fig5_heap/L_T\",job=\"0\"} "
        "30\n"
        "# HELP tca_rob_occupancy_sum_total Sum of per-cycle ROB "
        "occupancy\n"
        "# TYPE tca_rob_occupancy_sum_total counter\n"
        "tca_rob_occupancy_sum_total{run=\"fig5_heap/L_T\",job=\"0\"} "
        "400\n"
        "# HELP tca_stall_cycles_total Dispatch-stall cycles by cause\n"
        "# TYPE tca_stall_cycles_total counter\n"
        "tca_stall_cycles_total{run=\"fig5_heap/L_T\",job=\"0\","
        "cause=\"none\"} 5\n"
        "tca_stall_cycles_total{run=\"fig5_heap/L_T\",job=\"0\","
        "cause=\"rob_full\"} 10\n"
        "# HELP tca_accel_queue_pending Accelerator invocations in "
        "flight at the last epoch boundary\n"
        "# TYPE tca_accel_queue_pending gauge\n"
        "tca_accel_queue_pending{run=\"fig5_heap/L_T\",job=\"0\"} 0\n"
        "# HELP tca_run_finished Whether the run has ended\n"
        "# TYPE tca_run_finished gauge\n"
        "tca_run_finished{run=\"fig5_heap/L_T\",job=\"0\"} 1\n"
        "# HELP tca_bench_repeat Bench repeat progress\n"
        "# TYPE tca_bench_repeat gauge\n"
        "tca_bench_repeat{scenario=\"heap_hot\",phase=\"repeat\"} 2\n"
        "# HELP tca_bench_wall_seconds Scenario wall time so far\n"
        "# TYPE tca_bench_wall_seconds gauge\n"
        "tca_bench_wall_seconds{scenario=\"heap_hot\"} 1.250000\n"
        "# EOF\n");
}

TEST(TelemetryOpenMetrics, TextfileRewriteIsAtomic)
{
    auto dir = std::filesystem::temp_directory_path() /
        "tca_telemetry_openmetrics_test";
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    std::string path = (dir / "metrics.prom").string();

    OpenMetricsPublisher publisher(path);
    for (const TelemetryRecord &record : openMetricsFixture())
        publisher.publish(record);
    publisher.flush();

    // The textfile equals the in-memory exposition; no .tmp remains
    // (the rename completed).
    std::ifstream in(path);
    std::ostringstream os;
    os << in.rdbuf();
    EXPECT_EQ(os.str(), publisher.renderText());
    EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));

    std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------
// Environment selection
// ---------------------------------------------------------------------

TEST(TelemetryEnv, ParseOutputValues)
{
    EXPECT_EQ(parseTelemetryOutput("ndjson"), TelemetryOutput::Ndjson);
    EXPECT_EQ(parseTelemetryOutput("openmetrics"),
              TelemetryOutput::OpenMetrics);
    EXPECT_EQ(parseTelemetryOutput("prometheus"),
              TelemetryOutput::OpenMetrics);
    EXPECT_EQ(parseTelemetryOutput("off"), TelemetryOutput::Off);
    EXPECT_EQ(parseTelemetryOutput(""), TelemetryOutput::Off);
    EXPECT_EQ(parseTelemetryOutput("bogus"), TelemetryOutput::Off);
}

TEST(TelemetryEnv, RequestedBusFollowsEnvironment)
{
    EnvGuard guard;
    auto dir = std::filesystem::temp_directory_path() /
        "tca_telemetry_env_test";
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);

    // Off (the default): no bus, zero overhead downstream.
    ::unsetenv("TCA_TELEMETRY");
    ::unsetenv("TCA_TELEMETRY_PATH");
    ::unsetenv("TCA_TELEMETRY_EPOCH");
    ::unsetenv("TCA_OUT_DIR");
    EXPECT_EQ(requestedTelemetryBus("run"), nullptr);
    ::setenv("TCA_TELEMETRY", "off", 1);
    EXPECT_EQ(requestedTelemetryBus("run"), nullptr);

    // Requested but nowhere to write: warned about and dropped.
    ::setenv("TCA_TELEMETRY", "ndjson", 1);
    EXPECT_EQ(requestedTelemetryBus("run"), nullptr);

    // Explicit path + epoch override.
    std::string path = (dir / "telemetry.ndjson").string();
    ::setenv("TCA_TELEMETRY_PATH", path.c_str(), 1);
    ::setenv("TCA_TELEMETRY_EPOCH", "512", 1);
    {
        std::unique_ptr<TelemetryBus> bus = requestedTelemetryBus("run");
        ASSERT_NE(bus, nullptr);
        EXPECT_EQ(bus->numPublishers(), 1u);
        EXPECT_EQ(bus->epochCycles(), 512u);
        EXPECT_TRUE(std::filesystem::exists(path));
    }

    // Bad epoch values fall back to the 4096 default.
    ::setenv("TCA_TELEMETRY_EPOCH", "banana", 1);
    {
        std::unique_ptr<TelemetryBus> bus = requestedTelemetryBus("run");
        ASSERT_NE(bus, nullptr);
        EXPECT_EQ(bus->epochCycles(), 4096u);
    }
    ::unsetenv("TCA_TELEMETRY_EPOCH");

    // OpenMetrics destination.
    std::string prom = (dir / "metrics.prom").string();
    ::setenv("TCA_TELEMETRY", "openmetrics", 1);
    ::setenv("TCA_TELEMETRY_PATH", prom.c_str(), 1);
    {
        std::unique_ptr<TelemetryBus> bus = requestedTelemetryBus("run");
        ASSERT_NE(bus, nullptr);
        EXPECT_EQ(bus->numPublishers(), 1u);
    }

    std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------
// Parallel batch byte identity
// ---------------------------------------------------------------------

TEST(TelemetryBatch, StreamIsByteIdenticalForAnyJobCount)
{
    cpu::CoreConfig core;
    core.validate();

    workloads::WorkloadFactory factory = [](size_t index) {
        workloads::SyntheticConfig conf;
        conf.fillerUops = 1500 + 100 * index;
        conf.numInvocations = 2;
        conf.regionUops = 40;
        conf.accelLatency = 16;
        conf.accelMemRequests = 2;
        conf.seed = 77 + index;
        return std::make_unique<workloads::SyntheticWorkload>(conf);
    };

    auto streamWith = [&](size_t jobs) {
        std::ostringstream os;
        TelemetryBus bus(512);
        bus.addPublisher(std::make_unique<NdjsonPublisher>(os));
        workloads::ExperimentOptions options;
        options.collectStats = true; // samples carry counter deltas
        options.telemetry = &bus;
        workloads::runExperimentBatch(3, factory, core, options, jobs);
        return os.str();
    };

    std::string serial = streamWith(1);
    std::string parallel = streamWith(8);
    EXPECT_FALSE(serial.empty());
    EXPECT_EQ(serial, parallel);

    // The merged stream carries per-job tags in index order: job 0's
    // records all precede job 1's, which precede job 2's.
    EXPECT_NE(serial.find("\"job\":0"), std::string::npos);
    EXPECT_NE(serial.find("\"job\":2"), std::string::npos);
    size_t first1 = serial.find("\"job\":1");
    size_t last0 = serial.rfind("\"job\":0");
    ASSERT_NE(first1, std::string::npos);
    ASSERT_NE(last0, std::string::npos);
    EXPECT_LT(last0, first1);

    // Every run of the experiment streamed: baseline + 4 modes.
    for (const char *label :
         {"/baseline", "/L_T", "/NL_T", "/L_NT", "/NL_NT"})
        EXPECT_NE(serial.find(label), std::string::npos) << label;
}

// ---------------------------------------------------------------------
// Bench-harness heartbeats
// ---------------------------------------------------------------------

TEST(TelemetryHarness, HeartbeatsPerWarmupAndRepeat)
{
    auto dir = std::filesystem::temp_directory_path() /
        "tca_telemetry_harness_test";
    std::filesystem::remove_all(dir);

    TelemetryBus bus(4096);
    RingBufferPublisher *ring = attachRing(bus);

    BenchOptions options;
    options.repeats = 2;
    options.warmup = 1;
    options.jobs = 1;
    options.quiet = true;
    options.outDir = dir.string();
    options.telemetry = &bus;

    BenchScenario scenario;
    scenario.name = "fake";
    scenario.run = [](bool) {
        ScenarioMetrics m;
        m.simCycles = 100;
        m.committedUops = 4000;
        return m;
    };

    BenchHarness harness(options);
    harness.add(scenario);
    std::vector<ScenarioOutcome> outcomes = harness.runAll();
    ASSERT_EQ(outcomes.size(), 1u);

    // One heartbeat per completed warmup/repeat, in order.
    EXPECT_EQ(bus.numHeartbeats(), 3u);
    ASSERT_EQ(ring->records().size(), 3u);
    const auto &beats = ring->records();
    EXPECT_EQ(beats[0].phase, "warmup");
    EXPECT_EQ(beats[0].repeat, 1u);
    EXPECT_EQ(beats[0].repeats, 1u);
    EXPECT_LT(beats[0].etaSeconds, 0.0); // unknown during warmup
    EXPECT_EQ(beats[0].uopsPerSec, 0.0);
    EXPECT_EQ(beats[1].phase, "repeat");
    EXPECT_EQ(beats[1].repeat, 1u);
    EXPECT_EQ(beats[1].repeats, 2u);
    EXPECT_GE(beats[1].etaSeconds, 0.0); // one repeat left
    EXPECT_GT(beats[1].uopsPerSec, 0.0);
    EXPECT_EQ(beats[2].repeat, 2u);
    EXPECT_EQ(beats[2].etaSeconds, 0.0); // done
    for (const TelemetryRecord &beat : beats) {
        EXPECT_EQ(beat.scenario, "fake");
        EXPECT_GE(beat.wallSeconds, 0.0);
    }
    EXPECT_GE(bus.secondsSinceLastHeartbeat(), 0.0);

    // The BENCH record carries the stream-bookkeeping block.
    std::ifstream in(outcomes[0].jsonPath);
    std::ostringstream os;
    os << in.rdbuf();
    JsonValue doc;
    std::string error;
    ASSERT_TRUE(parseJson(os.str(), doc, &error)) << error;
    const JsonValue *telemetry = doc.find("telemetry");
    ASSERT_NE(telemetry, nullptr);
    EXPECT_EQ(telemetry->find("heartbeats")->number, 3.0);
    EXPECT_NE(telemetry->find("records"), nullptr);
    EXPECT_NE(telemetry->find("epochs"), nullptr);
    EXPECT_NE(telemetry->find("epoch_overhead_seconds"), nullptr);

    std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------
// tca_top model + screen
// ---------------------------------------------------------------------

namespace {

const char *const kTopFixture[] = {
    "{\"v\":1,\"kind\":\"run_begin\",\"run\":\"heap/L_T\",\"job\":0,"
    "\"epoch_cycles\":100,\"stall_causes\":[\"none\",\"rob_full\"],"
    "\"counters\":[\"cpu.core.commits\",\"mem.l1.misses\"]}",
    "{\"v\":1,\"kind\":\"sample\",\"run\":\"heap/L_T\",\"job\":0,"
    "\"epoch\":0,\"start\":0,\"cycles\":100,"
    "\"rob_occupancy_sum\":6400,\"commits\":150,\"accel_starts\":1,"
    "\"accel_busy_cycles\":40,\"stalls\":[3,17],\"deltas\":[150,9]}",
    "{\"v\":1,\"kind\":\"sample\",\"run\":\"heap/L_T\",\"job\":0,"
    "\"epoch\":1,\"start\":100,\"cycles\":50,"
    "\"rob_occupancy_sum\":1600,\"commits\":50,\"accel_starts\":0,"
    "\"accel_busy_cycles\":0,\"stalls\":[0,5],\"deltas\":[50,2]}",
    "{\"v\":1,\"kind\":\"run_end\",\"run\":\"heap/L_T\",\"job\":0,"
    "\"cycles\":150,\"uops\":200}",
    "{\"v\":1,\"kind\":\"heartbeat\",\"scenario\":\"heap_hot\","
    "\"phase\":\"repeat\",\"repeat\":2,\"of\":3,"
    "\"wall_seconds\":1.500000,\"eta_seconds\":0.750000,"
    "\"uops_per_sec\":2500000.0}",
};

TelemetryModel
topFixtureModel()
{
    TelemetryModel model;
    for (const char *line : kTopFixture)
        EXPECT_TRUE(model.consumeLine(line)) << line;
    return model;
}

} // anonymous namespace

TEST(TelemetryTop, ModelAggregatesTheStream)
{
    TelemetryModel model = topFixtureModel();
    EXPECT_EQ(model.numRecords(), 5u);
    EXPECT_EQ(model.numBadLines(), 0u);

    ASSERT_EQ(model.runs().size(), 1u);
    const TelemetryRunView &run = model.runs()[0];
    EXPECT_EQ(run.run, "heap/L_T");
    EXPECT_EQ(run.epochs, 2u);
    EXPECT_EQ(run.cycles, 150u);
    EXPECT_EQ(run.commits, 200u);
    EXPECT_TRUE(run.finished);
    EXPECT_EQ(run.finalCycles, 150u);
    EXPECT_EQ(run.finalUops, 200u);
    ASSERT_EQ(run.stallCycles.size(), 2u);
    EXPECT_EQ(run.stallCycles[1], 22u);
    ASSERT_EQ(run.counterTotals.size(), 2u);
    EXPECT_EQ(run.counterTotals[0], 200u);
    EXPECT_EQ(run.counterTotals[1], 11u);
    EXPECT_NEAR(run.ipc(), 200.0 / 150.0, 1e-9);
    EXPECT_NEAR(run.avgRobOccupancy(), 8000.0 / 150.0, 1e-9);
    EXPECT_NEAR(run.accelBusyPercent(), 100.0 * 40.0 / 150.0, 1e-9);

    ASSERT_EQ(model.scenarios().size(), 1u);
    const TelemetryScenarioView &s = model.scenarios()[0];
    EXPECT_EQ(s.scenario, "heap_hot");
    EXPECT_EQ(s.repeat, 2u);
    EXPECT_EQ(s.repeats, 3u);
    EXPECT_EQ(s.beats, 1u);

    // Blank lines are skipped; malformed lines are counted, not fatal.
    TelemetryModel tolerant = topFixtureModel();
    EXPECT_TRUE(tolerant.consumeLine(""));
    EXPECT_FALSE(tolerant.consumeLine("garbage"));
    EXPECT_EQ(tolerant.numBadLines(), 1u);
    EXPECT_EQ(tolerant.numRecords(), 5u);
}

TEST(TelemetryTop, RenderGolden)
{
    // The exact screen tca_top --once prints for the fixture stream:
    // a pure function of the records, so the golden is stable.
    TelemetryModel model = topFixtureModel();
    std::string screen = renderTopScreen(model, 80, 8);
    EXPECT_EQ(
        screen,
        "tca_top — 1 run(s), 0 active, 5 record(s)\n"
        "\n"
        "scenarios:\n"
        "  heap_hot               repeat   2/3  [########....]    "
        "1.50s  eta   0.8s     2.50 Muops/s\n"
        "\n"
        "runs:\n"
        "  run                        job  epochs      cycles    "
        "commits    IPC  ROB avg  accel%\n"
        "  heap/L_T                     0       2         150        "
        "200   1.33     53.3   26.7 done\n"
        "\n"
        "stall causes (cycles, all runs):\n"
        "  rob_full                    22  ########################\n"
        "  none                         3  ###\n"
        "\n"
        "hottest counters (last epoch delta):\n"
        "  cpu.core.commits                                  50\n"
        "  mem.l1.misses                                      2\n");

    // Deterministic: the same stream renders the same screen.
    TelemetryModel again = topFixtureModel();
    EXPECT_EQ(renderTopScreen(again, 80, 8), screen);
    // top_n truncates the hottest-counter table.
    std::string top1 = renderTopScreen(model, 80, 1);
    EXPECT_NE(top1.find("cpu.core.commits"), std::string::npos);
    EXPECT_EQ(top1.find("mem.l1.misses"), std::string::npos);
}

TEST(TelemetryTop, RepeatedRunsRenderIdenticalStreams)
{
    // Simulator determinism carries through the sampler: two identical
    // runs publish byte-identical NDJSON (the HeapWorkload/CI replay
    // property tca_top --replay depends on).
    workloads::SyntheticConfig conf;
    conf.fillerUops = 2000;
    conf.numInvocations = 2;
    conf.regionUops = 40;
    conf.accelLatency = 16;
    conf.seed = 7;
    cpu::CoreConfig core;
    core.validate();

    auto streamOnce = [&]() {
        std::ostringstream os;
        TelemetryBus bus(256);
        bus.addPublisher(std::make_unique<NdjsonPublisher>(os));
        TelemetrySampler sampler(&bus);
        sampler.setRunLabel("synthetic/baseline");
        workloads::SyntheticWorkload workload(conf);
        stats::StatsSnapshot snapshot;
        workloads::runBaselineOnce(workload, core, nullptr, {},
                                   &snapshot, cpu::Engine::Auto, nullptr,
                                   &sampler);
        return os.str();
    };

    std::string first = streamOnce();
    EXPECT_FALSE(first.empty());
    EXPECT_EQ(first, streamOnce());

    // ...and the screen rendered from that stream is reproducible.
    TelemetryModel model;
    std::istringstream in(first);
    std::string line;
    while (std::getline(in, line))
        EXPECT_TRUE(model.consumeLine(line));
    EXPECT_EQ(model.numBadLines(), 0u);
    ASSERT_EQ(model.runs().size(), 1u);
    EXPECT_TRUE(model.runs()[0].finished);
    EXPECT_FALSE(renderTopScreen(model).empty());
}
