/**
 * @file
 * TimelineSink tests: TCA_TIMELINE parsing and the per-kind artifact
 * each selection writes under $TCA_OUT_DIR.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "obs/timeline.hh"
#include "util/json.hh"

using namespace tca;

namespace {

std::string
slurp(const std::filesystem::path &path)
{
    std::ifstream in(path);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

/** Scoped env override that restores the old value. */
class ScopedEnv
{
  public:
    ScopedEnv(const char *name, const char *value) : key(name)
    {
        if (const char *old = std::getenv(name))
            saved = old;
        if (value)
            setenv(name, value, 1);
        else
            unsetenv(name);
    }
    ~ScopedEnv()
    {
        if (saved.empty())
            unsetenv(key.c_str());
        else
            setenv(key.c_str(), saved.c_str(), 1);
    }

  private:
    std::string key;
    std::string saved;
};

obs::UopLifecycle
uop(uint64_t seq)
{
    obs::UopLifecycle u;
    u.seq = seq;
    u.cls = trace::OpClass::IntAlu;
    u.dispatch = seq;
    u.issue = seq + 1;
    u.complete = seq + 2;
    u.commit = seq + 3;
    return u;
}

} // anonymous namespace

TEST(Timeline, ParseKind)
{
    using obs::TimelineKind;
    EXPECT_EQ(obs::parseTimelineKind("o3"), TimelineKind::O3);
    EXPECT_EQ(obs::parseTimelineKind("pipeview"), TimelineKind::O3);
    EXPECT_EQ(obs::parseTimelineKind("csv"), TimelineKind::Csv);
    EXPECT_EQ(obs::parseTimelineKind("chrome"), TimelineKind::Chrome);
    EXPECT_EQ(obs::parseTimelineKind("perfetto"), TimelineKind::Chrome);
    EXPECT_EQ(obs::parseTimelineKind(""), TimelineKind::None);
    EXPECT_EQ(obs::parseTimelineKind("bogus"), TimelineKind::None);
}

TEST(Timeline, RequestedSinkFollowsEnvironment)
{
    {
        ScopedEnv env("TCA_TIMELINE", nullptr);
        EXPECT_EQ(obs::requestedTimelineSink(), nullptr);
    }
    {
        ScopedEnv env("TCA_TIMELINE", "bogus");
        EXPECT_EQ(obs::requestedTimelineSink(), nullptr);
    }
    {
        ScopedEnv env("TCA_TIMELINE", "chrome");
        auto sink = obs::requestedTimelineSink();
        ASSERT_NE(sink, nullptr);
        EXPECT_EQ(sink->kind(), obs::TimelineKind::Chrome);
    }
}

TEST(Timeline, WritesArtifactPerKind)
{
    auto dir = std::filesystem::temp_directory_path() /
        "tca_timeline_test";
    std::filesystem::remove_all(dir);
    ScopedEnv out("TCA_OUT_DIR", dir.c_str());

    struct Case
    {
        obs::TimelineKind kind;
        const char *file;
    };
    for (const Case &c :
         {Case{obs::TimelineKind::Chrome, "trace.json"},
          Case{obs::TimelineKind::O3, "pipeview.txt"},
          Case{obs::TimelineKind::Csv, "pipeview.csv"}}) {
        obs::TimelineSink timeline(c.kind, 16);
        timeline.sink().onRunBegin(obs::RunContext{});
        for (uint64_t seq = 0; seq < 4; ++seq)
            timeline.sink().onCommit(uop(seq));
        timeline.sink().onRunEnd(10, 4);

        std::string path = timeline.writeArtifact("tl-run");
        ASSERT_FALSE(path.empty());
        EXPECT_EQ(path, (dir / "tl-run" / c.file).string());
        std::string text = slurp(path);
        ASSERT_FALSE(text.empty());
        if (c.kind == obs::TimelineKind::Chrome) {
            JsonValue doc;
            std::string error;
            ASSERT_TRUE(parseJson(text, doc, &error)) << error;
            EXPECT_NE(doc.find("traceEvents"), nullptr);
        } else if (c.kind == obs::TimelineKind::O3) {
            EXPECT_NE(text.find("O3PipeView:"), std::string::npos);
        } else {
            EXPECT_EQ(text.rfind("seq,", 0), 0u);
        }
    }

    std::filesystem::remove_all(dir);
}

TEST(Timeline, ArtifactNoOpWithoutOutDir)
{
    ScopedEnv out("TCA_OUT_DIR", nullptr);
    obs::TimelineSink timeline(obs::TimelineKind::Csv, 16);
    EXPECT_EQ(timeline.writeArtifact("tl-run"), "");
}
