/**
 * @file
 * Per-epoch counter-delta sampling: a TimeSeriesRecorder with a stats
 * registry attached samples every registered counter at epoch
 * boundaries and attributes the deltas to the epoch that just closed.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "obs/timeseries.hh"
#include "stats/registry.hh"
#include "util/json.hh"

using namespace tca;

namespace {

obs::RunContext
context()
{
    obs::RunContext ctx;
    ctx.coreName = "delta-test";
    ctx.stallCauseNames = {"none", "rob_full"};
    return ctx;
}

} // anonymous namespace

TEST(TimeSeriesDelta, DeltasAttributeToClosingEpoch)
{
    stats::Counter commits, stalls;
    stats::StatsRegistry registry;
    registry.addCounter("core.commits", &commits);
    registry.addCounter("core.stalls", &stalls);

    obs::TimeSeriesRecorder recorder(10);
    recorder.attachRegistry(&registry);
    recorder.onRunBegin(context());

    // Epoch 0 (cycles 0..9): 7 commits, 2 stalls.
    for (mem::Cycle c = 0; c < 10; ++c) {
        recorder.onCycle(c, 4);
        if (c < 7)
            commits.inc();
        if (c < 2)
            stalls.inc();
    }
    // Crossing into epoch 1 seals epoch 0's deltas.
    // Epoch 1 (cycles 10..14): 3 commits.
    for (mem::Cycle c = 10; c < 15; ++c) {
        recorder.onCycle(c, 4);
        commits.inc();
        commits.inc();
        commits.inc();
    }
    recorder.onRunEnd(15, 22);

    ASSERT_EQ(recorder.trackedCounterPaths().size(), 2u);
    EXPECT_EQ(recorder.trackedCounterPaths()[0], "core.commits");
    EXPECT_EQ(recorder.trackedCounterPaths()[1], "core.stalls");

    const auto &deltas = recorder.counterDeltas();
    ASSERT_EQ(deltas.size(), 2u); // one row per epoch
    EXPECT_EQ(deltas[0][0], 7u);
    EXPECT_EQ(deltas[0][1], 2u);
    EXPECT_EQ(deltas[1][0], 15u);
    EXPECT_EQ(deltas[1][1], 0u);
}

TEST(TimeSeriesDelta, BaselinesStartAtAttachTimeValues)
{
    stats::Counter warm;
    warm.inc(1000); // counter already mid-flight before the run
    stats::StatsRegistry registry;
    registry.addCounter("warm", &warm);

    obs::TimeSeriesRecorder recorder(10);
    recorder.attachRegistry(&registry);
    recorder.onRunBegin(context());
    recorder.onCycle(0, 1);
    warm.inc(5);
    recorder.onRunEnd(1, 0);

    ASSERT_EQ(recorder.counterDeltas().size(), 1u);
    EXPECT_EQ(recorder.counterDeltas()[0][0], 5u);
}

TEST(TimeSeriesDelta, UnattachedRecorderKeepsLegacyOutput)
{
    obs::TimeSeriesRecorder recorder(10);
    recorder.onRunBegin(context());
    recorder.onCycle(0, 2);
    recorder.onRunEnd(1, 0);

    EXPECT_TRUE(recorder.trackedCounterPaths().empty());
    EXPECT_TRUE(recorder.counterDeltas().empty());

    std::ostringstream csv;
    recorder.writeCsv(csv);
    EXPECT_EQ(csv.str().find("delta_"), std::string::npos);

    std::ostringstream os;
    {
        JsonWriter json(os);
        recorder.toJson(json);
    }
    EXPECT_EQ(os.str().find("counter_paths"), std::string::npos);
    EXPECT_EQ(os.str().find("counter_deltas"), std::string::npos);
}

TEST(TimeSeriesDelta, CsvAndJsonCarryDeltaColumns)
{
    stats::Counter n;
    stats::StatsRegistry registry;
    registry.addCounter("cpu.n", &n);

    obs::TimeSeriesRecorder recorder(10);
    recorder.attachRegistry(&registry);
    recorder.onRunBegin(context());
    for (mem::Cycle c = 0; c < 12; ++c) {
        recorder.onCycle(c, 1);
        n.inc();
    }
    recorder.onRunEnd(12, 0);

    std::ostringstream csv;
    recorder.writeCsv(csv);
    EXPECT_NE(csv.str().find(",delta_cpu.n"), std::string::npos);

    std::ostringstream os;
    {
        JsonWriter json(os);
        recorder.toJson(json);
    }
    JsonValue doc;
    ASSERT_TRUE(parseJson(os.str(), doc));
    const JsonValue *paths = doc.find("counter_paths");
    ASSERT_NE(paths, nullptr);
    ASSERT_EQ(paths->items.size(), 1u);
    EXPECT_EQ(paths->items[0].str, "cpu.n");
    const JsonValue *epochs = doc.find("epochs");
    ASSERT_EQ(epochs->items.size(), 2u);
    const JsonValue *d0 = epochs->items[0].find("counter_deltas");
    ASSERT_NE(d0, nullptr);
    EXPECT_DOUBLE_EQ(d0->items[0].number, 10.0);
    EXPECT_DOUBLE_EQ(
        epochs->items[1].find("counter_deltas")->items[0].number, 2.0);
}

TEST(TimeSeriesDelta, MergeSplicesAlignedDeltaRows)
{
    stats::Counter a, b;
    stats::StatsRegistry r1, r2;
    r1.addCounter("n", &a);
    r2.addCounter("n", &b);

    obs::TimeSeriesRecorder first(10), second(10);
    first.attachRegistry(&r1);
    second.attachRegistry(&r2);

    first.onRunBegin(context());
    for (mem::Cycle c = 0; c < 10; ++c) {
        first.onCycle(c, 1);
        a.inc();
    }
    first.onRunEnd(10, 0);

    second.onRunBegin(context());
    for (mem::Cycle c = 0; c < 5; ++c) {
        second.onCycle(c, 1);
        b.inc(2);
    }
    second.onRunEnd(5, 0);

    first.merge(second);
    ASSERT_EQ(first.epochs().size(), 2u);
    ASSERT_EQ(first.counterDeltas().size(), 2u);
    EXPECT_EQ(first.counterDeltas()[0][0], 10u);
    EXPECT_EQ(first.counterDeltas()[1][0], 10u);
    EXPECT_EQ(first.epochs()[1].startCycle, 10u);
}

TEST(TimeSeriesDeltaDeath, MergeRejectsMismatchedTrackedPaths)
{
    stats::Counter a, b;
    stats::StatsRegistry r1, r2;
    r1.addCounter("x", &a);
    r2.addCounter("y", &b);

    obs::TimeSeriesRecorder first(10), second(10);
    first.attachRegistry(&r1);
    second.attachRegistry(&r2);
    first.onRunBegin(context());
    first.onCycle(0, 1);
    first.onRunEnd(1, 0);
    second.onRunBegin(context());
    second.onCycle(0, 1);
    second.onRunEnd(1, 0);
    EXPECT_DEATH(first.merge(second), "");
}
