/**
 * @file
 * TimeSeriesRecorder tests: epoch boundary attribution for every event
 * category, CSV header shape, and JSON round-trip.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "obs/timeseries.hh"
#include "util/json.hh"

using namespace tca;

namespace {

obs::RunContext
context()
{
    obs::RunContext ctx;
    ctx.coreName = "ts-test";
    ctx.stallCauseNames = {"none", "rob_full", "iq_full"};
    return ctx;
}

} // anonymous namespace

TEST(TimeSeries, EpochBoundariesAndAttribution)
{
    obs::TimeSeriesRecorder recorder(10);
    recorder.onRunBegin(context());

    // Cycles 0..24: epochs [0,10), [10,20), [20,25).
    for (mem::Cycle c = 0; c < 25; ++c)
        recorder.onCycle(c, c < 10 ? 4 : 8);

    obs::UopLifecycle uop;
    uop.commit = 9;
    recorder.onCommit(uop); // epoch 0, by commit cycle
    uop.commit = 10;
    recorder.onCommit(uop); // epoch 1

    recorder.onDispatchStall(1, 3);  // epoch 0, cause rob_full
    recorder.onDispatchStall(1, 12); // epoch 1
    recorder.onDispatchStall(2, 12); // epoch 1, cause iq_full
    recorder.onDispatchStall(9, 12); // unknown cause id: dropped

    recorder.onMemPortClaim(8, 13);  // epoch 0 by requested; wait 5
    recorder.onAccelInvocation(0, 0, "dev", 21, 40, 19, 0); // epoch 2

    const std::vector<obs::Epoch> &epochs = recorder.epochs();
    ASSERT_EQ(epochs.size(), 3u);

    EXPECT_EQ(epochs[0].startCycle, 0u);
    EXPECT_EQ(epochs[1].startCycle, 10u);
    EXPECT_EQ(epochs[2].startCycle, 20u);
    EXPECT_EQ(epochs[0].cycles, 10u);
    EXPECT_EQ(epochs[2].cycles, 5u); // short final epoch
    EXPECT_DOUBLE_EQ(epochs[0].avgRobOccupancy(), 4.0);
    EXPECT_DOUBLE_EQ(epochs[1].avgRobOccupancy(), 8.0);

    EXPECT_EQ(epochs[0].commits, 1u);
    EXPECT_EQ(epochs[1].commits, 1u);
    ASSERT_EQ(epochs[0].stallCycles.size(), 3u);
    EXPECT_EQ(epochs[0].stallCycles[1], 1u);
    EXPECT_EQ(epochs[1].stallCycles[1], 1u);
    EXPECT_EQ(epochs[1].stallCycles[2], 1u);
    EXPECT_EQ(epochs[0].memPortClaims, 1u);
    EXPECT_EQ(epochs[0].memPortWaitSum, 5u);
    EXPECT_EQ(epochs[1].memPortClaims, 0u);
    EXPECT_EQ(epochs[2].accelStarts, 1u);
}

TEST(TimeSeries, RunBeginResetsSeries)
{
    obs::TimeSeriesRecorder recorder(10);
    recorder.onRunBegin(context());
    recorder.onCycle(0, 1);
    ASSERT_EQ(recorder.epochs().size(), 1u);
    recorder.onRunBegin(context());
    EXPECT_TRUE(recorder.epochs().empty());
    EXPECT_EQ(recorder.stallCauseNames().size(), 3u);
}

TEST(TimeSeries, CsvHasPerCauseColumns)
{
    obs::TimeSeriesRecorder recorder(10);
    recorder.onRunBegin(context());
    recorder.onCycle(0, 2);
    recorder.onDispatchStall(2, 0);

    std::ostringstream os;
    recorder.writeCsv(os);
    std::string text = os.str();
    EXPECT_EQ(text.rfind("epoch_start,cycles,avg_rob_occupancy,commits,"
                         "accel_starts,mem_port_claims,mem_port_wait,"
                         "stall_none,stall_rob_full,stall_iq_full\n",
                         0),
              0u);
    EXPECT_NE(text.find("\n0,1,2.000,0,0,0,0,0,0,1\n"),
              std::string::npos);
}

TEST(TimeSeries, MergeConcatenatesAndRenumbers)
{
    obs::TimeSeriesRecorder a(10), b(10);
    a.onRunBegin(context());
    for (mem::Cycle c = 0; c < 20; ++c)
        a.onCycle(c, 4); // two full epochs
    b.onRunBegin(context());
    for (mem::Cycle c = 0; c < 5; ++c)
        b.onCycle(c, 9); // one short epoch
    b.onDispatchStall(1, 2);

    a.merge(b);
    const std::vector<obs::Epoch> &epochs = a.epochs();
    ASSERT_EQ(epochs.size(), 3u);
    // b's epoch is renumbered as if the runs executed back to back.
    EXPECT_EQ(epochs[2].startCycle, 20u);
    EXPECT_EQ(epochs[2].cycles, 5u);
    EXPECT_DOUBLE_EQ(epochs[2].avgRobOccupancy(), 9.0);
    EXPECT_EQ(epochs[2].stallCycles[1], 1u);
}

TEST(TimeSeries, MergeIntoEmptyAdoptsCauseNames)
{
    obs::TimeSeriesRecorder a(10), b(10);
    b.onRunBegin(context());
    b.onCycle(0, 2);

    a.merge(b);
    ASSERT_EQ(a.epochs().size(), 1u);
    EXPECT_EQ(a.epochs()[0].startCycle, 0u);
    ASSERT_EQ(a.stallCauseNames().size(), 3u);
    EXPECT_EQ(a.stallCauseNames()[1], "rob_full");
}

TEST(TimeSeriesDeathTest, MergeEpochLengthMismatchPanics)
{
    obs::TimeSeriesRecorder a(10), b(16);
    EXPECT_DEATH(a.merge(b), "");
}

TEST(TimeSeries, ToJsonRoundTrips)
{
    obs::TimeSeriesRecorder recorder(16);
    recorder.onRunBegin(context());
    for (mem::Cycle c = 0; c < 20; ++c)
        recorder.onCycle(c, 3);
    recorder.onDispatchStall(1, 2);

    std::ostringstream os;
    JsonWriter json(os);
    recorder.toJson(json);
    EXPECT_TRUE(json.complete());

    JsonValue doc;
    std::string error;
    ASSERT_TRUE(parseJson(os.str(), doc, &error)) << error;
    const JsonValue *epoch_length = doc.find("epoch_length");
    ASSERT_NE(epoch_length, nullptr);
    EXPECT_DOUBLE_EQ(epoch_length->number, 16.0);
    const JsonValue *causes = doc.find("stall_causes");
    ASSERT_NE(causes, nullptr);
    ASSERT_EQ(causes->items.size(), 3u);
    EXPECT_EQ(causes->items[1].str, "rob_full");
    const JsonValue *json_epochs = doc.find("epochs");
    ASSERT_NE(json_epochs, nullptr);
    ASSERT_EQ(json_epochs->items.size(), 2u);
    const JsonValue *stalls = json_epochs->items[0].find("stalls");
    ASSERT_NE(stalls, nullptr);
    EXPECT_DOUBLE_EQ(stalls->items[1].number, 1.0);
}
