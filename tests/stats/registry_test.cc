#include <gtest/gtest.h>

#include <sstream>

#include "stats/registry.hh"
#include "util/json.hh"

namespace tca {
namespace stats {
namespace {

TEST(PathValidationTest, AcceptsDottedIdentifiers)
{
    EXPECT_TRUE(StatsRegistry::validPath("cycles"));
    EXPECT_TRUE(StatsRegistry::validPath("cpu.core.rob.full_stalls"));
    EXPECT_TRUE(StatsRegistry::validPath("modes.NL_T.mem.l1.mpki"));
    EXPECT_TRUE(StatsRegistry::validPath("a0.b_1.C2"));
}

TEST(PathValidationTest, RejectsMalformedPaths)
{
    EXPECT_FALSE(StatsRegistry::validPath(""));
    EXPECT_FALSE(StatsRegistry::validPath("."));
    EXPECT_FALSE(StatsRegistry::validPath(".cycles"));
    EXPECT_FALSE(StatsRegistry::validPath("cycles."));
    EXPECT_FALSE(StatsRegistry::validPath("cpu..core"));
    EXPECT_FALSE(StatsRegistry::validPath("cpu core"));
    EXPECT_FALSE(StatsRegistry::validPath("cpu-core"));
}

TEST(RegistryTest, RegistersAllFourKinds)
{
    Counter c;
    Gauge g;
    Distribution d;
    StatsRegistry registry;
    registry.addCounter("cpu.cycles", &c);
    registry.addGauge("mem.level", &g);
    registry.addHistogram("accel.latency", &d);
    registry.addFormula("cpu.ipc", [] { return 1.5; });

    EXPECT_EQ(registry.numStats(), 4u);
    EXPECT_EQ(registry.kindOf("cpu.cycles"), StatKind::Counter);
    EXPECT_EQ(registry.kindOf("mem.level"), StatKind::Gauge);
    EXPECT_EQ(registry.kindOf("accel.latency"), StatKind::Histogram);
    EXPECT_EQ(registry.kindOf("cpu.ipc"), StatKind::Formula);
    EXPECT_TRUE(registry.has("cpu.cycles"));
    EXPECT_FALSE(registry.has("cpu"));
}

TEST(RegistryTest, ValueOfReadsLiveStats)
{
    Counter c;
    StatsRegistry registry;
    registry.addCounter("n", &c);
    EXPECT_DOUBLE_EQ(registry.valueOf("n"), 0.0);
    c.inc(7);
    EXPECT_DOUBLE_EQ(registry.valueOf("n"), 7.0);
}

TEST(RegistryDeathTest, RejectsDuplicatePath)
{
    Counter a, b;
    StatsRegistry registry;
    registry.addCounter("cpu.cycles", &a);
    EXPECT_DEATH(registry.addCounter("cpu.cycles", &b), "");
}

TEST(RegistryDeathTest, RejectsPathNestingUnderLeaf)
{
    Counter a, b;
    StatsRegistry registry;
    registry.addCounter("cpu.cycles", &a);
    // "cpu.cycles" is a leaf; it cannot also be an interior node.
    EXPECT_DEATH(registry.addCounter("cpu.cycles.user", &b), "");
}

TEST(RegistryDeathTest, RejectsPathAboveLeaf)
{
    Counter a, b;
    StatsRegistry registry;
    registry.addCounter("cpu.cycles.user", &a);
    EXPECT_DEATH(registry.addCounter("cpu.cycles", &b), "");
}

TEST(RegistryDeathTest, RejectsInvalidPath)
{
    Counter a;
    StatsRegistry registry;
    EXPECT_DEATH(registry.addCounter("cpu..cycles", &a), "");
    EXPECT_DEATH(registry.valueOf("missing"), "");
}

TEST(RegistryTest, FormulasEvaluateLazilyAtReadTime)
{
    Counter uops, cycles;
    StatsRegistry registry;
    registry.addCounter("uops", &uops);
    registry.addCounter("cycles", &cycles);
    int evaluations = 0;
    registry.addFormula("ipc", [&] {
        ++evaluations;
        uint64_t c = cycles.value();
        return c ? static_cast<double>(uops.value()) / c : 0.0;
    });

    // Registration and simulation never evaluate the formula.
    uops.inc(30);
    cycles.inc(10);
    EXPECT_EQ(evaluations, 0);

    EXPECT_DOUBLE_EQ(registry.valueOf("ipc"), 3.0);
    EXPECT_EQ(evaluations, 1);

    // A later read sees later values: formulas are views, not caches.
    cycles.inc(10);
    EXPECT_DOUBLE_EQ(registry.valueOf("ipc"), 1.5);
}

/**
 * Formulas that read other registry stats through valueOf() see the
 * values current at dump time regardless of registration order — the
 * cross-component MPKI case.
 */
TEST(RegistryTest, FormulaEvaluationOrderIndependent)
{
    Counter misses, uops;
    StatsRegistry registry;
    // Formula registered BEFORE the counters it reads.
    registry.addFormula("mem.l1.mpki", [&registry] {
        double committed = registry.valueOf("cpu.uops");
        return committed > 0.0
            ? 1000.0 * registry.valueOf("mem.l1.misses") / committed
            : 0.0;
    });
    registry.addCounter("mem.l1.misses", &misses);
    registry.addCounter("cpu.uops", &uops);

    misses.inc(4);
    uops.inc(2000);
    EXPECT_DOUBLE_EQ(registry.valueOf("mem.l1.mpki"), 2.0);

    // The snapshot captures the formula's value too.
    StatsSnapshot snap = registry.snapshot();
    EXPECT_DOUBLE_EQ(snap.valueOf("mem.l1.mpki"), 2.0);
}

TEST(RegistryTest, VisitOrderIsLexicographic)
{
    Counter a, b, c;
    StatsRegistry registry;
    registry.addCounter("b.x", &b);
    registry.addCounter("a.y", &a);
    registry.addCounter("b.w", &c);

    struct Collect : StatVisitor
    {
        std::vector<std::string> paths;
        void onCounter(const std::string &path, uint64_t,
                       const std::string &) override
        {
            paths.push_back(path);
        }
    } collect;
    registry.visit(collect);
    ASSERT_EQ(collect.paths.size(), 3u);
    EXPECT_EQ(collect.paths[0], "a.y");
    EXPECT_EQ(collect.paths[1], "b.w");
    EXPECT_EQ(collect.paths[2], "b.x");
}

TEST(RegistryTest, JsonTreeNestsDottedPaths)
{
    Counter cycles, stalls;
    StatsRegistry registry;
    registry.addCounter("cpu.core.cycles", &cycles);
    registry.addCounter("cpu.core.rob.full_stalls", &stalls);
    registry.addFormula("cpu.core.ipc", [] { return 2.0; });
    cycles.inc(100);
    stalls.inc(3);

    std::ostringstream os;
    {
        JsonWriter json(os);
        registry.dumpJson(json);
    }
    JsonValue doc;
    ASSERT_TRUE(parseJson(os.str(), doc));
    const JsonValue *v = doc.find("cpu");
    ASSERT_NE(v, nullptr);
    const JsonValue *core = v->find("core");
    ASSERT_NE(core, nullptr);
    EXPECT_DOUBLE_EQ(core->find("cycles")->number, 100.0);
    EXPECT_DOUBLE_EQ(core->find("ipc")->number, 2.0);
    EXPECT_DOUBLE_EQ(core->find("rob")->find("full_stalls")->number,
                     3.0);
}

TEST(SnapshotTest, CountersAndGaugesSumOnMerge)
{
    Counter c1, c2;
    Gauge g1, g2;
    c1.inc(10);
    c2.inc(5);
    g1.set(1.5);
    g2.set(2.0);

    StatsRegistry r1, r2;
    r1.addCounter("n", &c1);
    r1.addGauge("g", &g1);
    r2.addCounter("n", &c2);
    r2.addGauge("g", &g2);

    StatsSnapshot merged = r1.snapshot();
    merged.merge(r2.snapshot());
    EXPECT_DOUBLE_EQ(merged.valueOf("n"), 15.0);
    EXPECT_DOUBLE_EQ(merged.valueOf("g"), 3.5);
}

TEST(SnapshotTest, FormulaMergeIsFoldWeightedMean)
{
    StatsRegistry r1, r2, r3;
    r1.addFormula("ipc", [] { return 1.0; });
    r2.addFormula("ipc", [] { return 2.0; });
    r3.addFormula("ipc", [] { return 6.0; });

    // ((1+2)/2 folded with 6) must weight the first two evaluations:
    // (1 + 2 + 6) / 3, not (1.5 + 6) / 2.
    StatsSnapshot merged = r1.snapshot();
    merged.merge(r2.snapshot());
    merged.merge(r3.snapshot());
    EXPECT_DOUBLE_EQ(merged.valueOf("ipc"), 3.0);
}

TEST(SnapshotTest, HistogramMergeIsAssociative)
{
    Distribution d1(10, 8), d2(10, 8), d3(10, 8);
    for (double v : {1.0, 5.0, 9.0})
        d1.sample(v);
    for (double v : {20.0, 25.0})
        d2.sample(v);
    for (double v : {42.0, 47.0, 61.0, 70.0})
        d3.sample(v);

    StatsRegistry r1, r2, r3;
    r1.addHistogram("lat", &d1);
    r2.addHistogram("lat", &d2);
    r3.addHistogram("lat", &d3);

    // (s1 + s2) + s3
    StatsSnapshot left = r1.snapshot();
    left.merge(r2.snapshot());
    left.merge(r3.snapshot());
    // s1 + (s2 + s3)
    StatsSnapshot right23 = r2.snapshot();
    right23.merge(r3.snapshot());
    StatsSnapshot right = r1.snapshot();
    right.merge(right23);

    EXPECT_EQ(left.str(), right.str());
}

TEST(SnapshotTest, MergeAddsDisjointPaths)
{
    Counter c1, c2;
    c1.inc(1);
    c2.inc(2);
    StatsRegistry r1, r2;
    r1.addCounter("a", &c1);
    r2.addCounter("b", &c2);

    StatsSnapshot merged = r1.snapshot();
    merged.merge(r2.snapshot());
    EXPECT_EQ(merged.numStats(), 2u);
    EXPECT_DOUBLE_EQ(merged.valueOf("a"), 1.0);
    EXPECT_DOUBLE_EQ(merged.valueOf("b"), 2.0);
}

TEST(SnapshotDeathTest, MergeRejectsKindMismatch)
{
    Counter c;
    Gauge g;
    StatsRegistry r1, r2;
    r1.addCounter("x", &c);
    r2.addGauge("x", &g);
    StatsSnapshot merged = r1.snapshot();
    StatsSnapshot other = r2.snapshot();
    EXPECT_DEATH(merged.merge(other), "");
}

TEST(SnapshotTest, MergePrefixedGraftsSubtree)
{
    Counter stalls;
    stalls.inc(11);
    StatsRegistry run;
    run.addCounter("cpu.core.rob.full_stalls", &stalls);

    StatsSnapshot tree;
    tree.mergePrefixed("modes.L_T", run.snapshot());
    tree.mergePrefixed("modes.NL_NT", run.snapshot());
    EXPECT_DOUBLE_EQ(
        tree.valueOf("modes.L_T.cpu.core.rob.full_stalls"), 11.0);
    EXPECT_DOUBLE_EQ(
        tree.valueOf("modes.NL_NT.cpu.core.rob.full_stalls"), 11.0);
    EXPECT_FALSE(tree.has("cpu.core.rob.full_stalls"));
}

TEST(SnapshotTest, StrIsStableAcrossIdenticalTrees)
{
    Counter c;
    c.inc(3);
    StatsRegistry r;
    r.addCounter("a.b", &c);
    r.addFormula("a.f", [] { return 0.5; });
    EXPECT_EQ(r.snapshot().str(), r.snapshot().str());
    EXPECT_NE(r.snapshot().str().find("\"b\": 3"), std::string::npos);
}

} // anonymous namespace
} // namespace stats
} // namespace tca
