#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>

#include "stats/stats.hh"
#include "util/json.hh"

namespace tca {
namespace stats {
namespace {

TEST(CounterTest, IncrementAndReset)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    c.inc(4);
    EXPECT_EQ(c.value(), 5u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(DistributionTest, MomentsOfKnownSamples)
{
    Distribution d;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        d.sample(v);
    EXPECT_EQ(d.numSamples(), 8u);
    EXPECT_DOUBLE_EQ(d.mean(), 5.0);
    EXPECT_NEAR(d.variance(), 4.0, 1e-9);
    EXPECT_NEAR(d.stddev(), 2.0, 1e-9);
    EXPECT_DOUBLE_EQ(d.minValue(), 2.0);
    EXPECT_DOUBLE_EQ(d.maxValue(), 9.0);
}

TEST(DistributionTest, EmptyIsZero)
{
    Distribution d;
    EXPECT_EQ(d.numSamples(), 0u);
    EXPECT_DOUBLE_EQ(d.mean(), 0.0);
    EXPECT_DOUBLE_EQ(d.variance(), 0.0);
    EXPECT_DOUBLE_EQ(d.minValue(), 0.0);
}

TEST(DistributionTest, SingleSample)
{
    Distribution d;
    d.sample(3.5);
    EXPECT_DOUBLE_EQ(d.mean(), 3.5);
    EXPECT_DOUBLE_EQ(d.variance(), 0.0);
    EXPECT_DOUBLE_EQ(d.minValue(), 3.5);
    EXPECT_DOUBLE_EQ(d.maxValue(), 3.5);
}

TEST(DistributionTest, HistogramBuckets)
{
    Distribution d(10, 3); // buckets [0,10) [10,20) [20,30) + overflow
    d.sample(5);
    d.sample(15);
    d.sample(25);
    d.sample(99);
    ASSERT_EQ(d.buckets().size(), 4u);
    EXPECT_EQ(d.buckets()[0], 1u);
    EXPECT_EQ(d.buckets()[1], 1u);
    EXPECT_EQ(d.buckets()[2], 1u);
    EXPECT_EQ(d.buckets()[3], 1u); // overflow
}

TEST(DistributionTest, NegativeSampleGoesToFirstBucket)
{
    Distribution d(10, 2);
    d.sample(-5.0);
    EXPECT_EQ(d.buckets()[0], 1u);
}

TEST(DistributionTest, ExactBucketEdgeLandsInNextBucket)
{
    Distribution d(10, 3);
    d.sample(10.0); // exactly on the [0,10)/[10,20) edge
    d.sample(30.0); // exactly on the last-bucket/overflow edge
    EXPECT_EQ(d.buckets()[0], 0u);
    EXPECT_EQ(d.buckets()[1], 1u);
    EXPECT_EQ(d.buckets()[3], 1u); // overflow, not bucket 2
}

TEST(DistributionTest, HugeSamplesClampToOverflow)
{
    // Values whose bucket quotient exceeds size_t (double->size_t cast
    // would be UB) must land in the overflow bucket, not crash.
    Distribution d(10, 3);
    d.sample(1e30);
    d.sample(std::numeric_limits<double>::max());
    ASSERT_EQ(d.buckets().size(), 4u);
    EXPECT_EQ(d.buckets()[3], 2u);
    EXPECT_EQ(d.numSamples(), 2u);
    EXPECT_DOUBLE_EQ(d.maxValue(), std::numeric_limits<double>::max());
}

TEST(DistributionTest, ToJsonRoundTrips)
{
    Distribution d(10, 2);
    d.sample(5.0);
    d.sample(15.0);
    d.sample(99.0);

    std::ostringstream os;
    JsonWriter json(os);
    d.toJson(json);
    EXPECT_TRUE(json.complete());

    JsonValue doc;
    std::string error;
    ASSERT_TRUE(parseJson(os.str(), doc, &error)) << error;
    EXPECT_DOUBLE_EQ(doc.find("samples")->number, 3.0);
    EXPECT_DOUBLE_EQ(doc.find("min")->number, 5.0);
    EXPECT_DOUBLE_EQ(doc.find("max")->number, 99.0);
    EXPECT_DOUBLE_EQ(doc.find("bucket_width")->number, 10.0);
    const JsonValue *buckets = doc.find("buckets");
    ASSERT_NE(buckets, nullptr);
    ASSERT_EQ(buckets->items.size(), 3u); // 2 + overflow
    EXPECT_DOUBLE_EQ(buckets->items[0].number, 1.0);
    EXPECT_DOUBLE_EQ(buckets->items[1].number, 1.0);
    EXPECT_DOUBLE_EQ(buckets->items[2].number, 1.0);
}

TEST(DistributionTest, MomentsOnlyToJsonOmitsHistogram)
{
    Distribution d; // histogram disabled
    d.sample(2.0);
    std::ostringstream os;
    JsonWriter json(os);
    d.toJson(json);
    JsonValue doc;
    ASSERT_TRUE(parseJson(os.str(), doc));
    EXPECT_EQ(doc.find("buckets"), nullptr);
    EXPECT_DOUBLE_EQ(doc.find("mean")->number, 2.0);
}

TEST(GroupTest, DumpJsonParses)
{
    Counter c;
    c.inc(7);
    Formula f([] { return 2.5; });
    Group group("core");
    group.addCounter("uops", &c);
    group.addFormula("ipc", &f);

    std::ostringstream os;
    dumpGroupsJson({&group}, os);
    JsonValue doc;
    std::string error;
    ASSERT_TRUE(parseJson(os.str(), doc, &error)) << error;
    const JsonValue *core = doc.find("core");
    ASSERT_NE(core, nullptr);
    EXPECT_DOUBLE_EQ(core->find("uops")->number, 7.0);
    EXPECT_DOUBLE_EQ(core->find("ipc")->number, 2.5);
}

TEST(DistributionTest, Reset)
{
    Distribution d(10, 2);
    d.sample(5);
    d.reset();
    EXPECT_EQ(d.numSamples(), 0u);
    EXPECT_EQ(d.buckets()[0], 0u);
}

TEST(FormulaTest, EvaluatesLazily)
{
    Counter num, den;
    Formula ipc([&]() {
        return den.value()
            ? static_cast<double>(num.value()) / den.value() : 0.0;
    });
    EXPECT_DOUBLE_EQ(ipc.value(), 0.0);
    num.inc(30);
    den.inc(10);
    EXPECT_DOUBLE_EQ(ipc.value(), 3.0);
}

TEST(FormulaTest, DefaultIsZero)
{
    Formula f;
    EXPECT_DOUBLE_EQ(f.value(), 0.0);
}

TEST(DistributionTest, PercentileUniformSamples)
{
    // 100 samples 0..99 into width-1 buckets: every percentile is an
    // exact order statistic and interpolation is the identity.
    Distribution d(1, 128);
    for (int i = 0; i < 100; ++i)
        d.sample(i);
    EXPECT_NEAR(d.p50(), 49.5, 0.51);
    EXPECT_NEAR(d.p95(), 94.05, 0.51);
    EXPECT_NEAR(d.p99(), 98.01, 0.51);
    EXPECT_DOUBLE_EQ(d.percentile(0.0), 0.0);
    EXPECT_DOUBLE_EQ(d.percentile(1.0), 99.0);
}

TEST(DistributionTest, PercentileInterpolatesInsideBucket)
{
    // All mass in one wide bucket: percentiles spread across it
    // (clamped into [min, max]) instead of snapping to an edge.
    Distribution d(100, 4);
    for (int i = 0; i < 10; ++i)
        d.sample(50.0);
    EXPECT_GE(d.p50(), 50.0);
    EXPECT_LE(d.p99(), 50.0 + 1e-9); // clamp to maxSeen
    EXPECT_DOUBLE_EQ(d.percentile(1.0), 50.0);
}

TEST(DistributionTest, PercentileSkewedTail)
{
    // 99 fast samples and one slow one: p50 stays low, p99+ sees the
    // tail bucket.
    Distribution d(10, 16);
    for (int i = 0; i < 99; ++i)
        d.sample(5.0);
    d.sample(120.0);
    EXPECT_LT(d.p50(), 10.0);
    EXPECT_LT(d.p95(), 10.0);
    EXPECT_GT(d.percentile(0.995), 100.0);
}

TEST(DistributionTest, PercentileOverflowBucketUsesMax)
{
    Distribution d(10, 2); // buckets [0,10), [10,20), overflow
    for (int i = 0; i < 10; ++i)
        d.sample(500.0);
    EXPECT_LE(d.p99(), 500.0);
    EXPECT_GT(d.p99(), 20.0); // interpolates toward max, not bucket lo
}

TEST(DistributionTest, PercentileWithoutHistogramFallsBack)
{
    Distribution d; // moments only
    d.sample(1.0);
    d.sample(3.0);
    d.sample(8.0);
    EXPECT_DOUBLE_EQ(d.percentile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(d.percentile(1.0), 8.0);
    EXPECT_DOUBLE_EQ(d.p95(), d.mean());
    EXPECT_DOUBLE_EQ(Distribution().p99(), 0.0); // empty
}

TEST(DistributionTest, PercentilesInJsonAndDump)
{
    Distribution d(2, 64);
    for (int i = 0; i < 50; ++i)
        d.sample(i % 20);

    std::ostringstream os;
    JsonWriter json(os);
    d.toJson(json);
    JsonValue doc;
    std::string error;
    ASSERT_TRUE(parseJson(os.str(), doc, &error)) << error;
    ASSERT_NE(doc.find("p50"), nullptr);
    ASSERT_NE(doc.find("p95"), nullptr);
    ASSERT_NE(doc.find("p99"), nullptr);
    EXPECT_NEAR(doc.find("p50")->number, d.p50(), 1e-9);

    Group group("g");
    group.addDistribution("lat", &d);
    std::ostringstream dump;
    group.dump(dump);
    EXPECT_NE(dump.str().find("p95="), std::string::npos);
}

TEST(DistributionMergeTest, FoldsMomentsAndBuckets)
{
    Distribution a(10, 3), b(10, 3);
    for (double v : {2.0, 4.0, 15.0})
        a.sample(v);
    for (double v : {1.0, 25.0, 99.0})
        b.sample(v);

    a.merge(b);
    EXPECT_EQ(a.numSamples(), 6u);
    EXPECT_DOUBLE_EQ(a.minValue(), 1.0);
    EXPECT_DOUBLE_EQ(a.maxValue(), 99.0);
    EXPECT_DOUBLE_EQ(a.mean(), (2.0 + 4.0 + 15.0 + 1.0 + 25.0 + 99.0) / 6);
    ASSERT_EQ(a.buckets().size(), 4u);
    EXPECT_EQ(a.buckets()[0], 3u); // 2, 4, 1
    EXPECT_EQ(a.buckets()[1], 1u); // 15
    EXPECT_EQ(a.buckets()[2], 1u); // 25
    EXPECT_EQ(a.buckets()[3], 1u); // 99 overflow
}

TEST(DistributionMergeTest, MatchesSerialSamplingExactly)
{
    // Small integers are FP-exact, so merging per-worker partials in
    // index order reproduces the serial accumulation bit for bit —
    // the property parallel experiment batches rely on.
    Distribution serial(2, 64), left(2, 64), right(2, 64);
    for (int i = 0; i < 40; ++i) {
        serial.sample(i % 23);
        (i < 20 ? left : right).sample(i % 23);
    }
    left.merge(right);
    EXPECT_EQ(left.numSamples(), serial.numSamples());
    EXPECT_DOUBLE_EQ(left.mean(), serial.mean());
    EXPECT_DOUBLE_EQ(left.variance(), serial.variance());
    EXPECT_DOUBLE_EQ(left.p50(), serial.p50());
    EXPECT_DOUBLE_EQ(left.p95(), serial.p95());
    EXPECT_DOUBLE_EQ(left.p99(), serial.p99());
    EXPECT_EQ(left.buckets(), serial.buckets());
}

TEST(DistributionMergeTest, EmptySidesAreNeutral)
{
    Distribution a(10, 2), empty(10, 2);
    a.sample(5.0);
    a.merge(empty); // merging nothing changes nothing
    EXPECT_EQ(a.numSamples(), 1u);
    EXPECT_DOUBLE_EQ(a.minValue(), 5.0);

    Distribution target(10, 2);
    target.merge(a); // merging into empty adopts min/max
    EXPECT_EQ(target.numSamples(), 1u);
    EXPECT_DOUBLE_EQ(target.minValue(), 5.0);
    EXPECT_DOUBLE_EQ(target.maxValue(), 5.0);
}

TEST(DistributionMergeDeathTest, GeometryMismatchPanics)
{
    Distribution a(10, 2), b(20, 2), c(10, 4);
    EXPECT_DEATH(a.merge(b), "");
    EXPECT_DEATH(a.merge(c), "");
}

TEST(GroupTest, DumpContainsAllStats)
{
    Counter c;
    c.inc(7);
    Distribution d;
    d.sample(1.0);
    Formula f([] { return 2.5; });

    Group group("core");
    group.addCounter("uops", &c, "committed micro-ops");
    group.addDistribution("lat", &d);
    group.addFormula("ipc", &f);

    std::ostringstream os;
    group.dump(os);
    std::string out = os.str();
    EXPECT_NE(out.find("core.uops 7"), std::string::npos);
    EXPECT_NE(out.find("committed micro-ops"), std::string::npos);
    EXPECT_NE(out.find("core.ipc 2.5"), std::string::npos);
    EXPECT_NE(out.find("core.lat samples=1"), std::string::npos);
}

} // namespace
} // namespace stats
} // namespace tca
