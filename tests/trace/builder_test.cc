#include <gtest/gtest.h>

#include "trace/builder.hh"

namespace tca {
namespace trace {
namespace {

TEST(BuilderTest, EmitsExpectedClasses)
{
    TraceBuilder b;
    b.alu(1, 2, 3).mul(4, 1, 1).fadd(5, 4, 4).fmul(6, 5, 5)
        .load(7, 0x1000).store(7, 0x1008).branch().nop();
    auto ops = b.take();
    ASSERT_EQ(ops.size(), 8u);
    EXPECT_EQ(ops[0].cls, OpClass::IntAlu);
    EXPECT_EQ(ops[1].cls, OpClass::IntMul);
    EXPECT_EQ(ops[2].cls, OpClass::FpAdd);
    EXPECT_EQ(ops[3].cls, OpClass::FpMul);
    EXPECT_EQ(ops[4].cls, OpClass::Load);
    EXPECT_EQ(ops[5].cls, OpClass::Store);
    EXPECT_EQ(ops[6].cls, OpClass::Branch);
    EXPECT_EQ(ops[7].cls, OpClass::Nop);
}

TEST(BuilderTest, FmaccReadsItsDestination)
{
    TraceBuilder b;
    b.fmacc(9, 2, 3);
    auto ops = b.take();
    ASSERT_EQ(ops.size(), 1u);
    EXPECT_EQ(ops[0].dst, 9);
    // Accumulation: dst appears among the sources.
    bool reads_dst = false;
    for (RegId r : ops[0].src)
        reads_dst |= (r == 9);
    EXPECT_TRUE(reads_dst);
}

TEST(BuilderTest, LoadCarriesAddressAndSize)
{
    TraceBuilder b;
    b.load(3, 0xdeadbeef, 4, 8);
    auto ops = b.take();
    EXPECT_EQ(ops[0].addr, 0xdeadbeefu);
    EXPECT_EQ(ops[0].size, 4);
    EXPECT_EQ(ops[0].dst, 3);
    EXPECT_EQ(ops[0].src[0], 8);
}

TEST(BuilderTest, StoreSourcesDataAndAddress)
{
    TraceBuilder b;
    b.store(5, 0x2000, 8, 6);
    auto ops = b.take();
    EXPECT_EQ(ops[0].src[0], 5);
    EXPECT_EQ(ops[0].src[1], 6);
    EXPECT_EQ(ops[0].dst, noReg);
}

TEST(BuilderTest, AcceleratableRegionMarking)
{
    TraceBuilder b;
    b.alu(1);
    b.beginAcceleratable();
    b.alu(2);
    b.alu(3);
    b.endAcceleratable();
    b.alu(4);
    auto ops = b.take();
    EXPECT_FALSE(ops[0].acceleratable);
    EXPECT_TRUE(ops[1].acceleratable);
    EXPECT_TRUE(ops[2].acceleratable);
    EXPECT_FALSE(ops[3].acceleratable);
}

TEST(BuilderTest, AccelUopAlwaysAcceleratable)
{
    TraceBuilder b;
    b.accel(42, 7, 8);
    auto ops = b.take();
    EXPECT_EQ(ops[0].cls, OpClass::Accel);
    EXPECT_EQ(ops[0].accelInvocation, 42u);
    EXPECT_EQ(ops[0].dst, 7);
    EXPECT_EQ(ops[0].src[0], 8);
    EXPECT_TRUE(ops[0].acceleratable);
}

TEST(BuilderTest, MispredictedBranchFlag)
{
    TraceBuilder b;
    b.branch(true, 3);
    auto ops = b.take();
    EXPECT_TRUE(ops[0].mispredicted);
    EXPECT_EQ(ops[0].src[0], 3);
}

TEST(BuilderTest, TakeResetsBuilder)
{
    TraceBuilder b;
    b.alu(1);
    auto first = b.take();
    EXPECT_EQ(first.size(), 1u);
    EXPECT_EQ(b.size(), 0u);
    b.alu(2);
    auto second = b.take();
    ASSERT_EQ(second.size(), 1u);
    EXPECT_EQ(second[0].dst, 2);
}

} // namespace
} // namespace trace
} // namespace tca
