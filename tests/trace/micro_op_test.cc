#include <gtest/gtest.h>

#include "trace/micro_op.hh"

namespace tca {
namespace trace {
namespace {

TEST(MicroOpTest, Predicates)
{
    MicroOp op;
    op.cls = OpClass::Load;
    EXPECT_TRUE(op.isLoad());
    EXPECT_TRUE(op.isMem());
    EXPECT_FALSE(op.isStore());
    EXPECT_FALSE(op.isAccel());

    op.cls = OpClass::Store;
    EXPECT_TRUE(op.isStore());
    EXPECT_TRUE(op.isMem());

    op.cls = OpClass::Accel;
    EXPECT_TRUE(op.isAccel());
    EXPECT_FALSE(op.isMem());

    op.cls = OpClass::Branch;
    EXPECT_TRUE(op.isBranch());
}

TEST(MicroOpTest, DefaultIsNopWithNoOperands)
{
    MicroOp op;
    EXPECT_EQ(op.cls, OpClass::Nop);
    EXPECT_EQ(op.dst, noReg);
    EXPECT_EQ(op.numSrcs(), 0);
    EXPECT_FALSE(op.acceleratable);
    EXPECT_FALSE(op.mispredicted);
}

TEST(MicroOpTest, NumSrcsCountsNonSentinel)
{
    MicroOp op;
    op.src = {3, noReg, 7};
    EXPECT_EQ(op.numSrcs(), 2);
}

TEST(MicroOpTest, OpClassNamesUnique)
{
    EXPECT_EQ(opClassName(OpClass::IntAlu), "IntAlu");
    EXPECT_EQ(opClassName(OpClass::Accel), "Accel");
    EXPECT_EQ(opClassName(OpClass::FpMacc), "FpMacc");
    EXPECT_NE(opClassName(OpClass::Load), opClassName(OpClass::Store));
}

} // namespace
} // namespace trace
} // namespace tca
