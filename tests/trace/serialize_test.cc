#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "trace/builder.hh"
#include "trace/serialize.hh"
#include "workloads/synthetic.hh"

namespace tca {
namespace trace {
namespace {

std::string
tmpPath(const char *tag)
{
    return testing::TempDir() + "/tcasim_" + tag + "_" +
           std::to_string(::getpid()) + ".trace";
}

TEST(SerializeTest, RoundTripPreservesEveryField)
{
    TraceBuilder b;
    b.alu(3, 4, 5);
    b.load(6, 0xdeadbeefcafeULL, 4, 7);
    b.store(8, 0x1234, 2, 9);
    b.branch(true, 10, true);
    b.beginAcceleratable();
    b.fmacc(11, 12, 13);
    b.endAcceleratable();
    b.accel(42, 14, 15, /*port=*/3);
    auto original = b.take();

    std::string path = tmpPath("roundtrip");
    VectorTrace source(original);
    EXPECT_EQ(writeTrace(source, path), original.size());

    FileTrace reader(path);
    EXPECT_EQ(reader.expectedLength(), original.size());
    auto loaded = collect(reader);
    ASSERT_EQ(loaded.size(), original.size());
    for (size_t i = 0; i < original.size(); ++i) {
        const MicroOp &a = original[i];
        const MicroOp &c = loaded[i];
        EXPECT_EQ(a.cls, c.cls) << i;
        EXPECT_EQ(a.dst, c.dst) << i;
        EXPECT_EQ(a.src, c.src) << i;
        EXPECT_EQ(a.addr, c.addr) << i;
        EXPECT_EQ(a.size, c.size) << i;
        EXPECT_EQ(a.mispredicted, c.mispredicted) << i;
        EXPECT_EQ(a.lowConfidence, c.lowConfidence) << i;
        EXPECT_EQ(a.acceleratable, c.acceleratable) << i;
        EXPECT_EQ(a.accelInvocation, c.accelInvocation) << i;
        EXPECT_EQ(a.accelPort, c.accelPort) << i;
    }
    std::remove(path.c_str());
}

TEST(SerializeTest, EmptyTrace)
{
    std::string path = tmpPath("empty");
    VectorTrace source;
    EXPECT_EQ(writeTrace(source, path), 0u);
    FileTrace reader(path);
    MicroOp op;
    EXPECT_FALSE(reader.next(op));
    std::remove(path.c_str());
}

TEST(SerializeTest, LargeWorkloadRoundTrip)
{
    workloads::SyntheticConfig conf;
    conf.fillerUops = 20000;
    conf.numInvocations = 20;
    workloads::SyntheticWorkload workload(conf);

    std::string path = tmpPath("synthetic");
    auto source = workload.makeBaselineTrace();
    uint64_t written = writeTrace(*source, path);

    FileTrace reader(path);
    auto loaded = collect(reader);
    EXPECT_EQ(loaded.size(), written);

    // Spot-check against a fresh generation.
    auto reference = collect(*workload.makeBaselineTrace());
    ASSERT_EQ(loaded.size(), reference.size());
    for (size_t i = 0; i < loaded.size(); i += 997) {
        EXPECT_EQ(loaded[i].cls, reference[i].cls);
        EXPECT_EQ(loaded[i].addr, reference[i].addr);
    }
    std::remove(path.c_str());
}

TEST(SerializeDeathTest, RejectsGarbageFile)
{
    std::string path = tmpPath("garbage");
    std::FILE *f = std::fopen(path.c_str(), "wb");
    std::fputs("this is not a trace file at all, sorry", f);
    std::fclose(f);
    EXPECT_EXIT(FileTrace{path}, testing::ExitedWithCode(1), "");
    std::remove(path.c_str());
}

TEST(SerializeDeathTest, RejectsMissingFile)
{
    EXPECT_EXIT(FileTrace{"/nonexistent/nope.trace"},
                testing::ExitedWithCode(1), "");
}

TEST(SerializeDeathTest, DetectsTruncation)
{
    TraceBuilder b;
    for (int i = 0; i < 100; ++i)
        b.alu(1);
    std::string path = tmpPath("trunc");
    VectorTrace source(b.take());
    writeTrace(source, path);

    // Chop the tail off.
    std::FILE *f = std::fopen(path.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(::ftruncate(::fileno(f), 16 + 50 * 32), 0);
    std::fclose(f);

    FileTrace reader(path);
    MicroOp op;
    EXPECT_EXIT(
        {
            while (reader.next(op)) {
            }
        },
        testing::ExitedWithCode(1), "");
    std::remove(path.c_str());
}

} // namespace
} // namespace trace
} // namespace tca
