#include <gtest/gtest.h>

#include "trace/builder.hh"
#include "trace/summary.hh"
#include "workloads/heap_workload.hh"

namespace tca {
namespace trace {
namespace {

TEST(TraceSummaryTest, CountsByClass)
{
    TraceBuilder b;
    b.alu(1).alu(2).load(3, 0x1000).store(3, 0x1040).branch(true)
        .fmacc(4, 5, 6);
    VectorTrace tr(b.take());
    TraceSummary s = summarizeTrace(tr);
    EXPECT_EQ(s.totalUops, 6u);
    EXPECT_EQ(s.count(OpClass::IntAlu), 2u);
    EXPECT_EQ(s.count(OpClass::Load), 1u);
    EXPECT_EQ(s.count(OpClass::Store), 1u);
    EXPECT_EQ(s.count(OpClass::Branch), 1u);
    EXPECT_EQ(s.count(OpClass::FpMacc), 1u);
    EXPECT_EQ(s.mispredictedBranches, 1u);
}

TEST(TraceSummaryTest, AcceleratableAndInvocationRates)
{
    TraceBuilder b;
    for (int i = 0; i < 6; ++i)
        b.alu(1);
    b.beginAcceleratable();
    b.alu(2).alu(2).alu(2);
    b.endAcceleratable();
    b.accel(0);
    VectorTrace tr(b.take());
    TraceSummary s = summarizeTrace(tr);
    EXPECT_EQ(s.totalUops, 10u);
    EXPECT_EQ(s.acceleratableUops, 4u); // region + accel uop
    EXPECT_EQ(s.accelInvocations, 1u);
    EXPECT_DOUBLE_EQ(s.acceleratableFraction(), 0.4);
    EXPECT_DOUBLE_EQ(s.invocationFrequency(), 0.1);
}

TEST(TraceSummaryTest, DistinctLinesDeduplicates)
{
    TraceBuilder b;
    b.load(1, 0x1000).load(1, 0x1008).load(1, 0x1040)
        .store(1, 0x1000);
    VectorTrace tr(b.take());
    TraceSummary s = summarizeTrace(tr);
    EXPECT_EQ(s.distinctLines, 2u); // 0x1000-line and 0x1040-line
}

TEST(TraceSummaryTest, MaxRegisterTracksSources)
{
    TraceBuilder b;
    b.alu(5, 200, 3);
    VectorTrace tr(b.take());
    EXPECT_EQ(summarizeTrace(tr).maxRegister, 200u);
}

TEST(TraceSummaryTest, EmptyTrace)
{
    VectorTrace tr;
    TraceSummary s = summarizeTrace(tr);
    EXPECT_EQ(s.totalUops, 0u);
    EXPECT_DOUBLE_EQ(s.acceleratableFraction(), 0.0);
}

TEST(TraceSummaryTest, MatchesWorkloadAccounting)
{
    // The summary's a and v over a heap baseline trace agree with the
    // workload's own bookkeeping.
    workloads::HeapConfig conf;
    conf.numCalls = 100;
    conf.fillerUopsPerGap = 60;
    workloads::HeapWorkload wl(conf);
    auto tr = wl.makeBaselineTrace();
    TraceSummary s = summarizeTrace(*tr);
    EXPECT_EQ(s.acceleratableUops, wl.acceleratableUops());
    EXPECT_EQ(s.accelInvocations, 0u);

    auto accel_tr = wl.makeAcceleratedTrace();
    TraceSummary s2 = summarizeTrace(*accel_tr);
    EXPECT_EQ(s2.accelInvocations, wl.numInvocations());
}

TEST(TraceSummaryTest, RenderingMentionsKeyNumbers)
{
    TraceBuilder b;
    b.alu(1).load(2, 0x2000);
    VectorTrace tr(b.take());
    std::string text = summarizeTrace(tr).str();
    EXPECT_NE(text.find("uops=2"), std::string::npos);
    EXPECT_NE(text.find("IntAlu=50.0%"), std::string::npos);
    EXPECT_NE(text.find("distinct 64B lines"), std::string::npos);
}

} // namespace
} // namespace trace
} // namespace tca
