#include <gtest/gtest.h>

#include "trace/trace_source.hh"

namespace tca {
namespace trace {
namespace {

MicroOp
aluOp(RegId dst)
{
    MicroOp op;
    op.cls = OpClass::IntAlu;
    op.dst = dst;
    return op;
}

TEST(VectorTraceTest, StreamsInOrder)
{
    VectorTrace tr({aluOp(1), aluOp(2), aluOp(3)});
    MicroOp op;
    ASSERT_TRUE(tr.next(op));
    EXPECT_EQ(op.dst, 1);
    ASSERT_TRUE(tr.next(op));
    EXPECT_EQ(op.dst, 2);
    ASSERT_TRUE(tr.next(op));
    EXPECT_EQ(op.dst, 3);
    EXPECT_FALSE(tr.next(op));
}

TEST(VectorTraceTest, EmptyTraceEndsImmediately)
{
    VectorTrace tr;
    MicroOp op;
    EXPECT_FALSE(tr.next(op));
    EXPECT_EQ(tr.expectedLength(), 0u);
}

TEST(VectorTraceTest, RewindRestarts)
{
    VectorTrace tr({aluOp(1), aluOp(2)});
    MicroOp op;
    while (tr.next(op)) {
    }
    tr.rewind();
    ASSERT_TRUE(tr.next(op));
    EXPECT_EQ(op.dst, 1);
}

TEST(VectorTraceTest, ExpectedLength)
{
    VectorTrace tr({aluOp(1), aluOp(2)});
    EXPECT_EQ(tr.expectedLength(), 2u);
}

TEST(CallbackTraceTest, GeneratorDrivesStream)
{
    int remaining = 3;
    CallbackTrace tr(
        [&](MicroOp &op) {
            if (remaining == 0)
                return false;
            op = aluOp(static_cast<RegId>(remaining--));
            return true;
        },
        3);
    EXPECT_EQ(tr.expectedLength(), 3u);
    auto ops = collect(tr);
    ASSERT_EQ(ops.size(), 3u);
    EXPECT_EQ(ops[0].dst, 3);
    EXPECT_EQ(ops[2].dst, 1);
}

TEST(CollectTest, HonorsMaxOps)
{
    VectorTrace tr({aluOp(1), aluOp(2), aluOp(3)});
    auto ops = collect(tr, 2);
    EXPECT_EQ(ops.size(), 2u);
}

} // namespace
} // namespace trace
} // namespace tca
