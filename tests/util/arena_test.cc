/**
 * @file
 * Unit tests for the data-oriented run-state containers
 * (util/arena.hh): Arena index stability and reset-not-free, MinHeap
 * pop-order equivalence with std::priority_queue, FixedRing wraparound
 * and its loud bound enforcement.
 */

#include <gtest/gtest.h>

#include <functional>
#include <queue>
#include <vector>

#include "util/arena.hh"
#include "util/random.hh"

namespace tca {
namespace {

TEST(Arena, AllocReturnsSequentialStableIndices)
{
    util::Arena<int> arena;
    for (uint32_t i = 0; i < 100; ++i) {
        uint32_t idx = arena.alloc();
        EXPECT_EQ(idx, i);
        arena[idx] = static_cast<int>(i * 3);
    }
    // Values written through early indices survive later growth: the
    // contract is index stability, not pointer stability.
    for (uint32_t i = 0; i < 100; ++i)
        EXPECT_EQ(arena[i], static_cast<int>(i * 3));
    EXPECT_EQ(arena.size(), 100u);
}

TEST(Arena, ResetRewindsCursorAndKeepsStorage)
{
    util::Arena<uint64_t> arena;
    for (int i = 0; i < 64; ++i)
        arena.alloc();
    size_t capacity_after_warmup = arena.capacity();
    EXPECT_GE(capacity_after_warmup, 64u);

    arena.reset();
    EXPECT_EQ(arena.size(), 0u);
    EXPECT_EQ(arena.capacity(), capacity_after_warmup);

    // The next run re-carves the same slab: indices restart at 0 and
    // no further heap growth happens within the warmed-up footprint.
    for (uint32_t i = 0; i < 64; ++i)
        EXPECT_EQ(arena.alloc(), i);
    EXPECT_EQ(arena.capacity(), capacity_after_warmup);
}

TEST(Arena, ReserveSizesSlabWithoutAllocating)
{
    util::Arena<int> arena;
    arena.reserve(32);
    EXPECT_GE(arena.capacity(), 32u);
    EXPECT_EQ(arena.size(), 0u);
}

TEST(ArenaDeathTest, OutOfRangeIndexPanics)
{
    util::Arena<int> arena;
    arena.alloc();
    EXPECT_DEATH(arena[1], "");
    EXPECT_DEATH(arena[util::arenaNil], "");
}

TEST(MinHeap, PopOrderMatchesPriorityQueue)
{
    // The swap-in claim for determinism: MinHeap must drain in exactly
    // the order std::priority_queue<T, vector, greater<T>> would,
    // including ties (both run the same std heap algorithms).
    Rng rng(1234);
    util::MinHeap<uint64_t> ours;
    std::priority_queue<uint64_t, std::vector<uint64_t>,
                        std::greater<uint64_t>> reference;
    for (int round = 0; round < 500; ++round) {
        if (!reference.empty() && rng.nextBelow(3) == 0) {
            ASSERT_EQ(ours.top(), reference.top());
            ours.pop();
            reference.pop();
        } else {
            uint64_t v = rng.nextBelow(64); // plenty of ties
            ours.push(v);
            reference.push(v);
        }
        ASSERT_EQ(ours.size(), reference.size());
    }
    while (!reference.empty()) {
        ASSERT_EQ(ours.top(), reference.top());
        ours.pop();
        reference.pop();
    }
    EXPECT_TRUE(ours.empty());
}

TEST(MinHeap, ClearEmptiesAndHeapStaysUsable)
{
    util::MinHeap<int> heap;
    heap.reserve(16);
    for (int v : {5, 1, 9, 3})
        heap.push(v);
    heap.clear();
    EXPECT_TRUE(heap.empty());
    EXPECT_EQ(heap.size(), 0u);

    heap.push(7);
    heap.push(2);
    EXPECT_EQ(heap.top(), 2);
    heap.pop();
    EXPECT_EQ(heap.top(), 7);
}

TEST(MinHeapDeathTest, TopAndPopOnEmptyPanic)
{
    util::MinHeap<int> heap;
    EXPECT_DEATH(heap.top(), "");
    EXPECT_DEATH(heap.pop(), "");
}

TEST(FixedRing, PushPopWrapsAroundTheSlab)
{
    util::FixedRing<int> ring;
    ring.reset(4);
    EXPECT_TRUE(ring.empty());
    EXPECT_EQ(ring.capacity(), 4u);

    // Cycle far more elements than the capacity through the ring so
    // head wraps repeatedly; FIFO order must hold throughout.
    int next_in = 0, next_out = 0;
    for (int step = 0; step < 100; ++step) {
        while (ring.size() < 3)
            ring.push_back(next_in++);
        EXPECT_EQ(ring.front(), next_out);
        EXPECT_EQ(ring.back(), next_in - 1);
        ring.pop_front();
        ++next_out;
    }
}

TEST(FixedRing, FrontRelativeIndexing)
{
    util::FixedRing<int> ring;
    ring.reset(3);
    ring.push_back(10);
    ring.push_back(20);
    ring.pop_front(); // head moves off slot 0
    ring.push_back(30);
    ring.push_back(40); // wraps into slot 0
    ASSERT_EQ(ring.size(), 3u);
    EXPECT_EQ(ring[0], 20);
    EXPECT_EQ(ring[1], 30);
    EXPECT_EQ(ring[2], 40);
}

TEST(FixedRing, ResetRebindsCapacityAndClearKeepsIt)
{
    util::FixedRing<int> ring;
    ring.reset(2);
    ring.push_back(1);
    ring.push_back(2);

    // Growing the bound preserves nothing (reset empties) but the
    // storage only reallocates when the capacity actually grows.
    ring.reset(8);
    EXPECT_TRUE(ring.empty());
    EXPECT_EQ(ring.capacity(), 8u);

    // Shrinking the bound keeps the larger slab (reset-not-free)...
    ring.reset(2);
    EXPECT_EQ(ring.capacity(), 8u);

    ring.push_back(5);
    ring.clear();
    EXPECT_TRUE(ring.empty());
    EXPECT_EQ(ring.capacity(), 8u);
}

TEST(FixedRingDeathTest, OverflowAndEmptyAccessPanic)
{
    util::FixedRing<int> ring;
    ring.reset(2);
    ring.push_back(1);
    ring.push_back(2);
    // A broken occupancy bound must fail loudly, never reallocate.
    EXPECT_DEATH(ring.push_back(3), "");

    ring.clear();
    EXPECT_DEATH(ring.front(), "");
    EXPECT_DEATH(ring.back(), "");
    EXPECT_DEATH(ring.pop_front(), "");
    EXPECT_DEATH(ring[0], "");
}

} // anonymous namespace
} // namespace tca
