#include <gtest/gtest.h>

#include <sstream>

#include "util/csv.hh"

namespace tca {
namespace {

TEST(CsvTest, SimpleRow)
{
    std::ostringstream os;
    CsvWriter csv(os);
    csv.row({"a", "b", "c"});
    EXPECT_EQ(os.str(), "a,b,c\n");
}

TEST(CsvTest, QuotesFieldsWithCommas)
{
    EXPECT_EQ(CsvWriter::escape("x,y"), "\"x,y\"");
}

TEST(CsvTest, EscapesEmbeddedQuotes)
{
    EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(CsvTest, PlainFieldUnchanged)
{
    EXPECT_EQ(CsvWriter::escape("plain"), "plain");
}

TEST(CsvTest, NumberRoundTrips)
{
    std::string s = CsvWriter::num(0.1);
    EXPECT_EQ(std::stod(s), 0.1);
}

TEST(CsvTest, MultipleRows)
{
    std::ostringstream os;
    CsvWriter csv(os);
    csv.row({"h1", "h2"});
    csv.row({"1", "2"});
    EXPECT_EQ(os.str(), "h1,h2\n1,2\n");
}

} // namespace
} // namespace tca
