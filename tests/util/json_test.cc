/**
 * @file
 * JsonWriter / parseJson tests: writer shape, string escaping, raw
 * fragments, round-tripping, and parser error reporting.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <limits>
#include <sstream>

#include "util/json.hh"

using namespace tca;

namespace {

std::string
writeDoc(const std::function<void(JsonWriter &)> &fn)
{
    std::ostringstream os;
    JsonWriter json(os);
    fn(json);
    return os.str();
}

} // anonymous namespace

TEST(JsonWriter, ObjectsArraysAndScalarsRoundTrip)
{
    std::string text = writeDoc([](JsonWriter &json) {
        json.beginObject();
        json.kv("name", "tcasim");
        json.kv("cycles", uint64_t{123456789});
        json.kv("ipc", 1.5);
        json.kv("negative", int64_t{-42});
        json.kv("ok", true);
        json.key("missing");
        json.nullValue();
        json.key("modes");
        json.beginArray();
        json.value("L_T");
        json.value(uint64_t{4});
        json.endArray();
        json.key("nested");
        json.beginObject();
        json.kv("depth", 2);
        json.endObject();
        json.endObject();
        EXPECT_TRUE(json.complete());
    });

    JsonValue doc;
    std::string error;
    ASSERT_TRUE(parseJson(text, doc, &error)) << error;
    EXPECT_EQ(doc.find("name")->str, "tcasim");
    EXPECT_DOUBLE_EQ(doc.find("cycles")->number, 123456789.0);
    EXPECT_DOUBLE_EQ(doc.find("ipc")->number, 1.5);
    EXPECT_DOUBLE_EQ(doc.find("negative")->number, -42.0);
    EXPECT_TRUE(doc.find("ok")->boolean);
    EXPECT_TRUE(doc.find("missing")->isNull());
    ASSERT_TRUE(doc.find("modes")->isArray());
    EXPECT_EQ(doc.find("modes")->items[0].str, "L_T");
    EXPECT_DOUBLE_EQ(doc.find("nested")->find("depth")->number, 2.0);
}

TEST(JsonWriter, EscapesControlAndQuoteCharacters)
{
    EXPECT_EQ(JsonWriter::escape("plain"), "plain");
    EXPECT_EQ(JsonWriter::escape("a\"b"), "a\\\"b");
    EXPECT_EQ(JsonWriter::escape("a\\b"), "a\\\\b");
    EXPECT_EQ(JsonWriter::escape("line\nbreak\ttab"),
              "line\\nbreak\\ttab");
    EXPECT_EQ(JsonWriter::escape(std::string("nul\x01")),
              "nul\\u0001");

    std::string text = writeDoc([](JsonWriter &json) {
        json.beginObject();
        json.kv("path", "C:\\tmp\n\"quoted\"");
        json.endObject();
    });
    JsonValue doc;
    ASSERT_TRUE(parseJson(text, doc));
    EXPECT_EQ(doc.find("path")->str, "C:\\tmp\n\"quoted\"");
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull)
{
    std::string text = writeDoc([](JsonWriter &json) {
        json.beginObject();
        json.kv("inf", std::numeric_limits<double>::infinity());
        json.kv("nan", std::nan(""));
        json.endObject();
    });
    JsonValue doc;
    ASSERT_TRUE(parseJson(text, doc));
    EXPECT_TRUE(doc.find("inf")->isNull());
    EXPECT_TRUE(doc.find("nan")->isNull());
}

TEST(JsonWriter, RawValueEmbedsFragmentVerbatim)
{
    std::string text = writeDoc([](JsonWriter &json) {
        json.beginObject();
        json.key("config");
        json.rawValue("{\"rob\": 128, \"ports\": [1, 2]}");
        json.endObject();
    });
    JsonValue doc;
    ASSERT_TRUE(parseJson(text, doc));
    const JsonValue *config = doc.find("config");
    ASSERT_NE(config, nullptr);
    EXPECT_DOUBLE_EQ(config->find("rob")->number, 128.0);
    EXPECT_DOUBLE_EQ(config->find("ports")->items[1].number, 2.0);
}

TEST(JsonParser, AcceptsEscapesAndUnicode)
{
    JsonValue doc;
    ASSERT_TRUE(parseJson(R"({"s": "a\u0041\n\/"})", doc));
    EXPECT_EQ(doc.find("s")->str, "aA\n/");

    ASSERT_TRUE(parseJson(R"({"eur": "\u20ac"})", doc));
    EXPECT_EQ(doc.find("eur")->str, "\xe2\x82\xac"); // UTF-8 euro
}

TEST(JsonParser, NumbersAndLiterals)
{
    JsonValue doc;
    ASSERT_TRUE(parseJson("[-1.5e3, 0, true, false, null]", doc));
    ASSERT_EQ(doc.items.size(), 5u);
    EXPECT_DOUBLE_EQ(doc.items[0].number, -1500.0);
    EXPECT_DOUBLE_EQ(doc.items[1].number, 0.0);
    EXPECT_TRUE(doc.items[2].boolean);
    EXPECT_FALSE(doc.items[3].boolean);
    EXPECT_TRUE(doc.items[4].isNull());
}

TEST(JsonParser, RejectsMalformedDocuments)
{
    JsonValue doc;
    std::string error;
    EXPECT_FALSE(parseJson("", doc, &error));
    EXPECT_FALSE(error.empty());
    EXPECT_FALSE(parseJson("{", doc, &error));
    EXPECT_FALSE(parseJson("{\"a\": }", doc, &error));
    EXPECT_FALSE(parseJson("[1, 2", doc, &error));
    EXPECT_FALSE(parseJson("{\"a\": 1} trailing", doc, &error));
    EXPECT_FALSE(parseJson("{'a': 1}", doc, &error));
    EXPECT_FALSE(parseJson("{\"a\": 01x}", doc, &error));
}

TEST(JsonParser, FindOnNonObjectReturnsNull)
{
    JsonValue doc;
    ASSERT_TRUE(parseJson("[1]", doc));
    EXPECT_EQ(doc.find("anything"), nullptr);
    ASSERT_TRUE(parseJson("{\"a\": 1}", doc));
    EXPECT_EQ(doc.find("b"), nullptr);
}
