#include <gtest/gtest.h>

#include "util/logging.hh"

namespace tca {
namespace {

TEST(LoggingTest, WarnCountsAccumulate)
{
    Logger &logger = Logger::global();
    uint64_t before = logger.warnCount();
    warn("test warning %d", 1);
    warn("test warning %d", 2);
    EXPECT_EQ(logger.warnCount(), before + 2);
}

TEST(LoggingTest, ThresholdSuppressionStillCountsWarnings)
{
    Logger &logger = Logger::global();
    LogLevel old_level = logger.getThreshold();
    logger.setThreshold(LogLevel::Fatal);
    uint64_t before = logger.warnCount();
    warn("suppressed warning");
    EXPECT_EQ(logger.warnCount(), before + 1);
    logger.setThreshold(old_level);
}

TEST(LoggingTest, InformDoesNotCountAsWarning)
{
    Logger &logger = Logger::global();
    LogLevel old_level = logger.getThreshold();
    logger.setThreshold(LogLevel::Fatal); // quiet output
    uint64_t before = logger.warnCount();
    inform("hello %s", "world");
    EXPECT_EQ(logger.warnCount(), before);
    logger.setThreshold(old_level);
}

TEST(LoggingDeathTest, PanicAborts)
{
    EXPECT_DEATH(panic("boom %d", 3), "");
}

TEST(LoggingDeathTest, AssertMacroFiresOnFalse)
{
    EXPECT_DEATH(tca_assert(1 == 2), "");
}

TEST(LoggingTest, AssertMacroPassesOnTrue)
{
    tca_assert(1 + 1 == 2);
    SUCCEED();
}

} // namespace
} // namespace tca
