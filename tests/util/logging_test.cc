#include <gtest/gtest.h>

#include <cstdlib>

#include "util/logging.hh"

namespace tca {
namespace {

TEST(LoggingTest, WarnCountsAccumulate)
{
    Logger &logger = Logger::global();
    uint64_t before = logger.warnCount();
    warn("test warning %d", 1);
    warn("test warning %d", 2);
    EXPECT_EQ(logger.warnCount(), before + 2);
}

TEST(LoggingTest, ThresholdSuppressionStillCountsWarnings)
{
    Logger &logger = Logger::global();
    LogLevel old_level = logger.getThreshold();
    logger.setThreshold(LogLevel::Fatal);
    uint64_t before = logger.warnCount();
    warn("suppressed warning");
    EXPECT_EQ(logger.warnCount(), before + 1);
    logger.setThreshold(old_level);
}

TEST(LoggingTest, InformDoesNotCountAsWarning)
{
    Logger &logger = Logger::global();
    LogLevel old_level = logger.getThreshold();
    logger.setThreshold(LogLevel::Fatal); // quiet output
    uint64_t before = logger.warnCount();
    inform("hello %s", "world");
    EXPECT_EQ(logger.warnCount(), before);
    logger.setThreshold(old_level);
}

TEST(LoggingDeathTest, PanicAborts)
{
    EXPECT_DEATH(panic("boom %d", 3), "");
}

TEST(LoggingDeathTest, AssertMacroFiresOnFalse)
{
    EXPECT_DEATH(tca_assert(1 == 2), "");
}

TEST(LoggingTest, AssertMacroPassesOnTrue)
{
    tca_assert(1 + 1 == 2);
    SUCCEED();
}

TEST(LoggingTest, ParseLogLevelNames)
{
    bool ok = false;
    EXPECT_EQ(parseLogLevel("debug", &ok), LogLevel::Debug);
    EXPECT_TRUE(ok);
    EXPECT_EQ(parseLogLevel("WARN", &ok), LogLevel::Warn);
    EXPECT_TRUE(ok);
    EXPECT_EQ(parseLogLevel("warning", &ok), LogLevel::Warn);
    EXPECT_TRUE(ok);
    EXPECT_EQ(parseLogLevel("Fatal", &ok), LogLevel::Fatal);
    EXPECT_TRUE(ok);
    EXPECT_EQ(parseLogLevel("nonsense", &ok), LogLevel::Info);
    EXPECT_FALSE(ok);
    EXPECT_EQ(parseLogLevel("", nullptr), LogLevel::Info);
}

TEST(LoggingTest, TagEnableDisable)
{
    Logger &logger = Logger::global();
    EXPECT_FALSE(logger.tagEnabled("obs-test-tag"));
    logger.enableTag("obs-test-tag");
    EXPECT_TRUE(logger.tagEnabled("obs-test-tag"));
    EXPECT_FALSE(logger.tagEnabled("other-tag"));
    logger.disableTag("obs-test-tag");
    EXPECT_FALSE(logger.tagEnabled("obs-test-tag"));
}

TEST(LoggingTest, EnvOverridesThresholdAndTags)
{
    Logger &logger = Logger::global();
    LogLevel old_level = logger.getThreshold();

    setenv("TCA_LOG_LEVEL", "error", 1);
    setenv("TCA_LOG_TAGS", "core, obs", 1);
    logger.applyEnvOverrides();
    EXPECT_EQ(logger.getThreshold(), LogLevel::Error);
    EXPECT_TRUE(logger.tagEnabled("core"));
    EXPECT_TRUE(logger.tagEnabled("obs"));
    EXPECT_FALSE(logger.tagEnabled("mem"));

    // An unrecognized level leaves the threshold untouched.
    setenv("TCA_LOG_LEVEL", "shout", 1);
    logger.applyEnvOverrides();
    EXPECT_EQ(logger.getThreshold(), LogLevel::Error);

    // "all" enables every tag.
    setenv("TCA_LOG_TAGS", "all", 1);
    logger.applyEnvOverrides();
    EXPECT_TRUE(logger.tagEnabled("anything"));

    // Restore: a tag list without "all" clears the wildcard, and an
    // unset variable leaves the state alone.
    setenv("TCA_LOG_TAGS", "cleanup-sentinel", 1);
    logger.applyEnvOverrides();
    EXPECT_FALSE(logger.tagEnabled("anything"));
    unsetenv("TCA_LOG_TAGS");
    unsetenv("TCA_LOG_LEVEL");
    logger.applyEnvOverrides();
    EXPECT_TRUE(logger.tagEnabled("cleanup-sentinel"));
    logger.disableTag("cleanup-sentinel");
    logger.setThreshold(old_level);
}

TEST(LoggingTest, TaggedDebugRespectsTagGate)
{
    Logger &logger = Logger::global();
    LogLevel old_level = logger.getThreshold();
    logger.setThreshold(LogLevel::Fatal); // quiet output
    uint64_t before = logger.warnCount();
    tca_debug("logging-test", "invisible %d", 1);
    logger.enableTag("logging-test");
    tca_debug("logging-test", "tag-gated %d", 2);
    logger.disableTag("logging-test");
    // Debug messages never count as warnings either way.
    EXPECT_EQ(logger.warnCount(), before);
    logger.setThreshold(old_level);
}

TEST(LoggingTest, PanicHooksRunAndDeregister)
{
    int first = 0;
    int second = 0;
    uint64_t id_first = addPanicHook([&first] { ++first; });
    uint64_t id_second = addPanicHook([&second] { ++second; });
    EXPECT_NE(id_first, id_second);

    runPanicHooks();
    EXPECT_EQ(first, 1);
    EXPECT_EQ(second, 1);

    removePanicHook(id_first);
    runPanicHooks();
    EXPECT_EQ(first, 1);
    EXPECT_EQ(second, 2);

    removePanicHook(id_second);
    runPanicHooks();
    EXPECT_EQ(second, 2);
}

TEST(LoggingTest, PanicHookRecursionIsGuarded)
{
    // A hook that itself panics (here: re-enters runPanicHooks) must
    // not recurse — the writer's flush hook runs while the panic that
    // triggered it is still unwinding.
    int runs = 0;
    uint64_t id = addPanicHook([&runs] {
        ++runs;
        runPanicHooks();
    });
    runPanicHooks();
    EXPECT_EQ(runs, 1);

    // The guard resets afterwards, so a later panic still flushes.
    runPanicHooks();
    EXPECT_EQ(runs, 2);
    removePanicHook(id);
}

} // namespace
} // namespace tca
