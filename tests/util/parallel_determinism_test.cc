/**
 * @file
 * The determinism contract of docs/PARALLELISM.md, enforced: every
 * parallel fan-out site must produce byte-identical results under
 * TCA_JOBS=1 (the exact serial loop) and TCA_JOBS=8. Doubles are
 * serialized as hexfloat so the comparison is bitwise, not approximate.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <iomanip>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "model/sweeps.hh"
#include "model/validation.hh"
#include "obs/bench_harness.hh"
#include "obs/event_sink.hh"
#include "stats/stats.hh"
#include "util/json.hh"
#include "util/thread_pool.hh"
#include "workloads/experiment.hh"
#include "workloads/synthetic.hh"

namespace tca {
namespace {

using model::HeatmapGrid;
using model::SweepPoint;
using model::TcaParams;
using model::ValidationPoint;
using workloads::ExperimentBatch;
using workloads::ExperimentOptions;
using workloads::ExperimentResult;

/** Run `body` with TCA_JOBS set to `jobs`, restoring the old value. */
template <typename Body>
auto
withJobs(const char *jobs, Body &&body)
{
    const char *old = std::getenv("TCA_JOBS");
    std::string saved = old ? old : "";
    bool had = old != nullptr;
    setenv("TCA_JOBS", jobs, 1);
    auto result = body();
    if (had)
        setenv("TCA_JOBS", saved.c_str(), 1);
    else
        unsetenv("TCA_JOBS");
    return result;
}

/** Bitwise-faithful double rendering. */
void
put(std::ostringstream &os, double v)
{
    os << std::hexfloat << v << ';';
}

std::string
serialize(const std::vector<SweepPoint> &points)
{
    std::ostringstream os;
    for (const SweepPoint &p : points) {
        put(os, p.x);
        for (double s : p.speedup)
            put(os, s);
    }
    return os.str();
}

std::string
serialize(const HeatmapGrid &grid)
{
    std::ostringstream os;
    for (double a : grid.aValues)
        put(os, a);
    for (double v : grid.vValues)
        put(os, v);
    for (const auto &mode : grid.speedup)
        for (const auto &row : mode)
            for (double s : row)
                put(os, s);
    return os.str();
}

std::string
serialize(const std::vector<ValidationPoint> &points)
{
    std::ostringstream os;
    for (const ValidationPoint &p : points) {
        put(os, p.estimated);
        put(os, p.measured);
    }
    return os.str();
}

TcaParams
sweepBase()
{
    TcaParams params = model::armA72Preset().apply(TcaParams{});
    params.acceleratableFraction = 0.4;
    params.accelerationFactor = 2.5;
    return params;
}

TEST(ParallelDeterminismTest, SweepsAreByteIdentical)
{
    auto all = [] {
        TcaParams base = sweepBase();
        std::ostringstream os;
        os << serialize(model::granularitySweep(base, 10.0, 1e5, 6));
        os << serialize(model::acceleratableSweep(base, 200.0, 0.05,
                                                  0.95, 37));
        os << serialize(model::heatmapSweep(base, 13, 1e-5, 1e-2, 17));
        return os.str();
    };
    std::string serial = withJobs("1", all);
    std::string parallel = withJobs("8", all);
    EXPECT_FALSE(serial.empty());
    EXPECT_EQ(serial, parallel);
}

TEST(ParallelDeterminismTest, ValidationPointsAreByteIdentical)
{
    auto collect = [] {
        return model::collectValidationPoints(64, [](size_t i) {
            TcaParams params = sweepBase();
            params.invocationFrequency =
                1e-5 * static_cast<double>(i + 1);
            model::IntervalModel m(params);
            ValidationPoint p;
            p.estimated = m.speedup(
                model::allTcaModes[i % model::allTcaModes.size()]);
            p.measured = p.estimated * (1.0 + 1e-3 * (i % 7));
            return p;
        });
    };
    std::string serial = withJobs("1", [&] { return serialize(collect()); });
    std::string parallel =
        withJobs("8", [&] { return serialize(collect()); });
    EXPECT_FALSE(serial.empty());
    EXPECT_EQ(serial, parallel);
}

/**
 * Serializes every event scalar it sees; two runs producing the same
 * string saw the same events in the same order.
 */
class ChecksumSink : public obs::EventSink
{
  public:
    std::string text() const { return os.str(); }

    void
    onRunBegin(const obs::RunContext &ctx) override
    {
        os << "B:" << ctx.coreName << ',' << ctx.robSize << ';';
    }
    void
    onRunEnd(mem::Cycle cycles, uint64_t committed) override
    {
        os << "E:" << cycles << ',' << committed << ';';
    }
    void
    onDispatch(uint64_t seq, const trace::MicroOp &op,
               mem::Cycle now) override
    {
        os << "D:" << seq << ',' << static_cast<int>(op.cls) << ','
           << now << ';';
    }
    void
    onIssue(uint64_t seq, mem::Cycle now) override
    {
        os << "I:" << seq << ',' << now << ';';
    }
    void
    onCommit(const obs::UopLifecycle &uop) override
    {
        os << "C:" << uop.seq << ',' << uop.dispatch << ',' << uop.issue
           << ',' << uop.complete << ',' << uop.commit << ';';
    }
    void
    onRobAllocate(uint64_t seq, uint32_t occupancy) override
    {
        os << "ra:" << seq << ',' << occupancy << ';';
    }
    void
    onRobRetire(uint64_t seq, uint32_t occupancy) override
    {
        os << "rr:" << seq << ',' << occupancy << ';';
    }
    void
    onAccelInvocation(uint8_t port, uint32_t invocation,
                      const char *device, mem::Cycle start,
                      mem::Cycle complete, uint32_t compute_latency,
                      uint32_t num_requests) override
    {
        os << "A:" << int{port} << ',' << invocation << ',' << device
           << ',' << start << ',' << complete << ',' << compute_latency
           << ',' << num_requests << ';';
    }
    void
    onAccelDeviceEvent(const char *device, const char *event,
                       uint64_t value) override
    {
        os << "V:" << device << ',' << event << ',' << value << ';';
    }

  private:
    std::ostringstream os;
};

workloads::WorkloadFactory
batchFactory()
{
    return [](size_t i) {
        workloads::SyntheticConfig conf;
        conf.fillerUops = 4000;
        conf.numInvocations = 8 + static_cast<uint32_t>(4 * i);
        conf.regionUops = 100;
        conf.accelLatency = 40;
        conf.seed = 100 + i; // per-job trace, derived from the index
        return std::make_unique<workloads::SyntheticWorkload>(conf);
    };
}

std::string
serializeBatch(const ExperimentBatch &batch, const ChecksumSink &sink)
{
    std::ostringstream os;
    for (const ExperimentResult &r : batch.results) {
        os << r.workloadName << ':' << r.baseline.cycles << ','
           << r.baseline.committedUops << ';';
        put(os, r.params.acceleratableFraction);
        put(os, r.params.invocationFrequency);
        for (const workloads::ModeOutcome &mode : r.modes) {
            os << mode.sim.cycles << ',' << mode.sim.committedUops
               << ',';
            put(os, mode.measuredSpeedup);
            put(os, mode.modeledSpeedup);
            put(os, mode.errorPercent);
        }
    }
    // Merged distribution: the JSON carries moments, percentiles, and
    // buckets, so byte-comparing it covers them all.
    JsonWriter json(os);
    batch.accelLatency.toJson(json);
    put(os, batch.accelLatency.p50());
    put(os, batch.accelLatency.p95());
    put(os, batch.accelLatency.p99());
    os << '#' << sink.text();
    return os.str();
}

TEST(ParallelDeterminismTest, ExperimentBatchIsByteIdentical)
{
    auto run = [] {
        ChecksumSink sink;
        ExperimentOptions options;
        options.profileIntervals = true;
        options.sink = &sink;
        ExperimentBatch batch = workloads::runExperimentBatch(
            5, batchFactory(), cpu::a72CoreConfig(), options);
        return serializeBatch(batch, sink);
    };
    std::string serial = withJobs("1", run);
    std::string parallel = withJobs("8", run);
    EXPECT_FALSE(serial.empty());
    EXPECT_EQ(serial, parallel);
    // The event stream must actually contain events for this to mean
    // anything.
    EXPECT_NE(serial.find("A:"), std::string::npos);
}

TEST(ParallelDeterminismTest, BenchMetricsMatchSerialModuloTiming)
{
    // Two deterministic scenarios through the harness: everything
    // except wall-clock timing must match between 1 and 4 jobs.
    auto outcomes = [](int jobs) {
        obs::BenchOptions options;
        options.repeats = 2;
        options.warmup = 1;
        options.jobs = jobs;
        options.outDir = ::testing::TempDir() + "/det_jobs_" +
                         std::to_string(jobs);
        obs::BenchHarness harness(options);
        for (int s = 0; s < 3; ++s) {
            obs::BenchScenario scenario;
            scenario.name = "det" + std::to_string(s);
            scenario.run = [s](bool) {
                obs::ScenarioMetrics metrics;
                metrics.simCycles = 1000u * (s + 1);
                metrics.committedUops = 17u * (s + 1);
                obs::ModeErrorReport report;
                report.mode = "NL_T";
                report.meanAbsErrorPercent = 0.5 * (s + 1);
                report.dominantTerm = "t_accl";
                metrics.modeErrors.push_back(report);
                return metrics;
            };
            harness.add(scenario);
        }
        return harness.runAll();
    };
    std::vector<obs::ScenarioOutcome> serial = outcomes(1);
    std::vector<obs::ScenarioOutcome> parallel = outcomes(4);
    ASSERT_EQ(serial.size(), parallel.size());
    for (size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i].name, parallel[i].name);
        EXPECT_EQ(serial[i].simCycles, parallel[i].simCycles);
        EXPECT_EQ(serial[i].committedUops, parallel[i].committedUops);
        ASSERT_EQ(serial[i].modeErrors.size(),
                  parallel[i].modeErrors.size());
        for (size_t m = 0; m < serial[i].modeErrors.size(); ++m) {
            EXPECT_EQ(serial[i].modeErrors[m].mode,
                      parallel[i].modeErrors[m].mode);
            EXPECT_DOUBLE_EQ(
                serial[i].modeErrors[m].meanAbsErrorPercent,
                parallel[i].modeErrors[m].meanAbsErrorPercent);
        }
    }
}

} // namespace
} // namespace tca
