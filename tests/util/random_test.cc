#include <gtest/gtest.h>

#include <set>

#include "util/random.hh"

namespace tca {
namespace {

TEST(RngTest, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        if (a.next() == b.next())
            ++same;
    EXPECT_LT(same, 3);
}

TEST(RngTest, ZeroSeedRemapped)
{
    Rng rng(0);
    EXPECT_NE(rng.next(), 0u);
}

TEST(RngTest, NextBelowInRange)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.nextBelow(13), 13u);
}

TEST(RngTest, NextBelowOneAlwaysZero)
{
    Rng rng(7);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(rng.nextBelow(1), 0u);
}

TEST(RngTest, NextRangeInclusive)
{
    Rng rng(9);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 10000; ++i) {
        uint64_t v = rng.nextRange(3, 5);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 5u);
        saw_lo |= (v == 3);
        saw_hi |= (v == 5);
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval)
{
    Rng rng(11);
    for (int i = 0; i < 10000; ++i) {
        double v = rng.nextDouble();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
    }
}

TEST(RngTest, NextDoubleMeanNearHalf)
{
    Rng rng(13);
    double sum = 0.0;
    constexpr int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += rng.nextDouble();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, BernoulliFrequency)
{
    Rng rng(17);
    int hits = 0;
    constexpr int n = 100000;
    for (int i = 0; i < n; ++i)
        if (rng.nextBool(0.3))
            ++hits;
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, BernoulliExtremes)
{
    Rng rng(19);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.nextBool(0.0));
        EXPECT_TRUE(rng.nextBool(1.0));
    }
}

TEST(RngTest, SamplePositionsSortedUniqueInRange)
{
    Rng rng(23);
    auto picks = rng.samplePositions(1000, 50);
    ASSERT_EQ(picks.size(), 50u);
    std::set<uint64_t> unique(picks.begin(), picks.end());
    EXPECT_EQ(unique.size(), 50u);
    for (size_t i = 1; i < picks.size(); ++i)
        EXPECT_LT(picks[i - 1], picks[i]);
    for (uint64_t p : picks)
        EXPECT_LT(p, 1000u);
}

TEST(RngTest, SampleAllPositions)
{
    Rng rng(29);
    auto picks = rng.samplePositions(10, 10);
    ASSERT_EQ(picks.size(), 10u);
    for (uint64_t i = 0; i < 10; ++i)
        EXPECT_EQ(picks[i], i);
}

TEST(RngTest, SampleZero)
{
    Rng rng(31);
    EXPECT_TRUE(rng.samplePositions(10, 0).empty());
}

TEST(RngTest, ShufflePreservesElements)
{
    Rng rng(37);
    std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
    auto orig = v;
    rng.shuffle(v);
    std::multiset<int> a(v.begin(), v.end());
    std::multiset<int> b(orig.begin(), orig.end());
    EXPECT_EQ(a, b);
}

} // namespace
} // namespace tca
