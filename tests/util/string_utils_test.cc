#include <gtest/gtest.h>

#include "util/string_utils.hh"

namespace tca {
namespace {

TEST(StringUtilsTest, SplitBasic)
{
    auto parts = split("a,b,c", ',');
    ASSERT_EQ(parts.size(), 3u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[2], "c");
}

TEST(StringUtilsTest, SplitKeepsEmptyFields)
{
    auto parts = split("a,,b,", ',');
    ASSERT_EQ(parts.size(), 4u);
    EXPECT_EQ(parts[1], "");
    EXPECT_EQ(parts[3], "");
}

TEST(StringUtilsTest, TrimWhitespace)
{
    EXPECT_EQ(trim("  hi  "), "hi");
    EXPECT_EQ(trim("\t x\n"), "x");
    EXPECT_EQ(trim(""), "");
    EXPECT_EQ(trim("   "), "");
}

TEST(StringUtilsTest, ToLower)
{
    EXPECT_EQ(toLower("NL_NT"), "nl_nt");
    EXPECT_EQ(toLower("abc123"), "abc123");
}

TEST(StringUtilsTest, FormatBytes)
{
    EXPECT_EQ(formatBytes(512), "512B");
    EXPECT_EQ(formatBytes(32 * 1024), "32KiB");
    EXPECT_EQ(formatBytes(2 * 1024 * 1024), "2MiB");
}

TEST(StringUtilsTest, FormatBytesNonAligned)
{
    // 1536 is 1.5 KiB; stays in bytes because not a whole unit.
    EXPECT_EQ(formatBytes(1536), "1536B");
}

TEST(StringUtilsTest, FormatPercent)
{
    EXPECT_EQ(formatPercent(0.125, 1), "12.5%");
    EXPECT_EQ(formatPercent(1.0, 0), "100%");
}

} // namespace
} // namespace tca
