#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "util/table.hh"

namespace tca {
namespace {

TEST(TextTableTest, AlignsColumns)
{
    TextTable table;
    table.setHeader({"name", "value"});
    table.addRow({"x", "1"});
    table.addRow({"longer", "22"});
    std::string out = table.str();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("longer"), std::string::npos);
    // Header separator line present.
    EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(TextTableTest, RowCount)
{
    TextTable table;
    EXPECT_EQ(table.numRows(), 0u);
    table.addRow({"a"});
    table.addRow({"b"});
    EXPECT_EQ(table.numRows(), 2u);
}

TEST(TextTableTest, FormatDouble)
{
    EXPECT_EQ(TextTable::fmt(1.23456, 2), "1.23");
    EXPECT_EQ(TextTable::fmt(2.0, 1), "2.0");
}

TEST(TextTableTest, FormatInteger)
{
    EXPECT_EQ(TextTable::fmt(uint64_t{42}), "42");
}

TEST(TextTableTest, NoHeaderNoSeparator)
{
    TextTable table;
    table.addRow({"a", "b"});
    EXPECT_EQ(table.str().find("---"), std::string::npos);
}

TEST(TextTableTest, CsvRendering)
{
    TextTable table;
    table.setHeader({"a", "b"});
    table.addRow({"1", "x,y"});
    std::ostringstream os;
    table.printCsv(os);
    EXPECT_EQ(os.str(), "a,b\n1,\"x,y\"\n");
}

TEST(TextTableTest, CsvExportHonorsEnvironment)
{
    TextTable table;
    table.setHeader({"col"});
    table.addRow({"7"});

    ::unsetenv("TCA_CSV_DIR");
    EXPECT_FALSE(table.writeCsvIfRequested("table_test"));

    std::string dir = testing::TempDir();
    ::setenv("TCA_CSV_DIR", dir.c_str(), 1);
    EXPECT_TRUE(table.writeCsvIfRequested("table_test"));
    std::ifstream in(dir + "/table_test.csv");
    std::string line;
    ASSERT_TRUE(std::getline(in, line));
    EXPECT_EQ(line, "col");
    ::unsetenv("TCA_CSV_DIR");
    std::remove((dir + "/table_test.csv").c_str());
}

TEST(TextTableTest, RaggedRowsHandled)
{
    TextTable table;
    table.setHeader({"a"});
    table.addRow({"1", "2", "3"});
    std::string out = table.str();
    EXPECT_NE(out.find("3"), std::string::npos);
}

} // namespace
} // namespace tca
