#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/thread_pool.hh"

namespace tca {
namespace util {
namespace {

TEST(ParseJobsTest, PositiveDecimal)
{
    EXPECT_EQ(parseJobs("1", 7), 1u);
    EXPECT_EQ(parseJobs("8", 7), 8u);
    EXPECT_EQ(parseJobs("32", 7), 32u);
}

TEST(ParseJobsTest, FallbackCases)
{
    EXPECT_EQ(parseJobs(nullptr, 7), 7u);
    EXPECT_EQ(parseJobs("", 7), 7u);
    EXPECT_EQ(parseJobs("0", 7), 7u);
    EXPECT_EQ(parseJobs("-4", 7), 7u);
    EXPECT_EQ(parseJobs("garbage", 7), 7u);
    EXPECT_EQ(parseJobs("4x", 7), 7u);   // trailing junk
    EXPECT_EQ(parseJobs("3.5", 7), 7u);  // not an integer
}

TEST(ParseJobsTest, ClampsToMaxJobs)
{
    EXPECT_EQ(parseJobs("257", 7), maxJobs);
    EXPECT_EQ(parseJobs("99999999999999999999", 7), maxJobs);
}

TEST(ParseJobsTest, HardwareJobsIsAtLeastOne)
{
    EXPECT_GE(hardwareJobs(), 1u);
}

TEST(ParseJobsTest, ConfiguredJobsReadsEnvPerCall)
{
    ASSERT_EQ(setenv("TCA_JOBS", "3", 1), 0);
    EXPECT_EQ(configuredJobs(), 3u);
    ASSERT_EQ(setenv("TCA_JOBS", "bogus", 1), 0);
    EXPECT_EQ(configuredJobs(), hardwareJobs());
    ASSERT_EQ(unsetenv("TCA_JOBS"), 0);
    EXPECT_EQ(configuredJobs(), hardwareJobs());
}

TEST(ThreadPoolTest, EmptyJobListReturnsImmediately)
{
    ThreadPool pool(4);
    bool ran = false;
    pool.parallelFor(0, [&](size_t) { ran = true; });
    EXPECT_FALSE(ran);
}

TEST(ThreadPoolTest, MoreJobsThanWorkersRunsEachIndexExactlyOnce)
{
    ThreadPool pool(3);
    constexpr size_t n = 1000;
    std::vector<std::atomic<int>> hits(n);
    for (auto &h : hits)
        h.store(0);
    pool.parallelFor(n, [&](size_t i) { hits[i].fetch_add(1); });
    for (size_t i = 0; i < n; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPoolTest, ReusableAcrossBatches)
{
    ThreadPool pool(2);
    for (int round = 0; round < 50; ++round) {
        std::atomic<size_t> sum{0};
        pool.parallelFor(10, [&](size_t i) { sum.fetch_add(i + 1); });
        EXPECT_EQ(sum.load(), 55u);
    }
}

TEST(ThreadPoolTest, ExceptionOfLowestIndexPropagates)
{
    ThreadPool pool(4);
    std::atomic<int> completed{0};
    try {
        pool.parallelFor(100, [&](size_t i) {
            if (i == 7 || i == 3 || i == 80)
                throw std::runtime_error("job " + std::to_string(i));
            completed.fetch_add(1);
        });
        FAIL() << "expected runtime_error";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "job 3");
    }
    // Every non-throwing job still ran before the rethrow.
    EXPECT_EQ(completed.load(), 97);
}

TEST(ThreadPoolTest, NestedSubmitIsRejected)
{
    ThreadPool pool(2);
    // The nested parallelFor throws logic_error inside the worker; the
    // outer call rethrows it on the calling thread.
    EXPECT_THROW(
        pool.parallelFor(4,
                         [&](size_t) {
                             EXPECT_TRUE(ThreadPool::insideWorker());
                             pool.parallelFor(2, [](size_t) {});
                         }),
        std::logic_error);
}

TEST(ThreadPoolTest, InsideWorkerIsFalseOnCallingThread)
{
    EXPECT_FALSE(ThreadPool::insideWorker());
    ThreadPool pool(2);
    pool.parallelFor(2, [](size_t) {});
    EXPECT_FALSE(ThreadPool::insideWorker());
}

TEST(ParallelForIndexedTest, SerialWhenJobsIsOne)
{
    // jobs == 1 must not spawn a pool: the body observes the calling
    // thread's context, so insideWorker() stays false throughout.
    std::vector<size_t> order;
    parallelForIndexed(
        5,
        [&](size_t i) {
            EXPECT_FALSE(ThreadPool::insideWorker());
            order.push_back(i);
        },
        1);
    EXPECT_EQ(order, (std::vector<size_t>{0, 1, 2, 3, 4}));
}

TEST(ParallelForIndexedTest, NestedFanOutDegradesToSerial)
{
    std::atomic<size_t> inner_total{0};
    parallelForIndexed(
        4,
        [&](size_t) {
            // Nested call: runs the serial loop on this worker instead
            // of deadlocking or throwing.
            size_t local = 0;
            parallelForIndexed(8, [&](size_t j) { local += j; }, 8);
            inner_total.fetch_add(local);
        },
        4);
    EXPECT_EQ(inner_total.load(), 4u * 28u);
}

TEST(ParallelForIndexedTest, MapWritesByIndex)
{
    std::vector<int> out = parallelMapIndexed<int>(
        100, [](size_t i) { return static_cast<int>(i * i); }, 8);
    ASSERT_EQ(out.size(), 100u);
    for (size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], static_cast<int>(i * i));
}

} // namespace
} // namespace util
} // namespace tca
