#include <gtest/gtest.h>

#include "workloads/calibrator.hh"

namespace tca {
namespace workloads {
namespace {

cpu::SimResult
fakeBaseline(uint64_t cycles, uint64_t uops, uint64_t acceleratable)
{
    cpu::SimResult r;
    r.cycles = cycles;
    r.committedUops = uops;
    r.committedAcceleratable = acceleratable;
    return r;
}

TEST(CalibratorTest, BasicDerivation)
{
    // 100k uops in 50k cycles (IPC 2), 30k acceleratable, 300
    // invocations (g = 100 uops each), accel latency 10 cycles.
    cpu::SimResult base = fakeBaseline(50000, 100000, 30000);
    cpu::CoreConfig core = cpu::a72CoreConfig();
    model::TcaParams p = calibrateModel(base, 300, 10.0, core);

    EXPECT_NEAR(p.acceleratableFraction, 0.3, 1e-12);
    EXPECT_NEAR(p.invocationFrequency, 300.0 / 100000.0, 1e-12);
    EXPECT_NEAR(p.ipc, 2.0, 1e-12);
    // A = g / (IPC * L) = 100 / (2 * 10) = 5.
    EXPECT_NEAR(p.accelerationFactor, 5.0, 1e-9);
    EXPECT_EQ(p.robSize, core.robSize);
    EXPECT_EQ(p.issueWidth, core.dispatchWidth);
    EXPECT_DOUBLE_EQ(p.commitStall, core.commitLatency);
}

TEST(CalibratorTest, AccelTimeIdentityHolds)
{
    // eq (2) round trip: per-invocation accel time equals the latency
    // we calibrated from.
    cpu::SimResult base = fakeBaseline(80000, 120000, 24000);
    model::TcaParams p =
        calibrateModel(base, 400, 25.0, cpu::a72CoreConfig());
    double per_invocation_accl =
        p.acceleratableFraction /
        (p.invocationFrequency * p.accelerationFactor * p.ipc);
    EXPECT_NEAR(per_invocation_accl, 25.0, 1e-9);
}

TEST(CalibratorTest, SingleCycleAcceleratorHighA)
{
    // Heap-TCA case: 69-uop regions replaced by 1-cycle invocations.
    cpu::SimResult base = fakeBaseline(60000, 100000, 6900);
    model::TcaParams p =
        calibrateModel(base, 100, 1.0, cpu::a72CoreConfig());
    // g = 69, IPC = 5/3 -> A = 69 / (5/3) = 41.4.
    EXPECT_NEAR(p.accelerationFactor, 41.4, 0.1);
}

TEST(CalibratorDeathTest, RejectsDegenerateInputs)
{
    cpu::SimResult base = fakeBaseline(1000, 1000, 100);
    EXPECT_DEATH(
        calibrateModel(base, 0, 1.0, cpu::a72CoreConfig()), "");
    EXPECT_DEATH(
        calibrateModel(base, 10, 0.0, cpu::a72CoreConfig()), "");
}

} // namespace
} // namespace workloads
} // namespace tca
