#include <gtest/gtest.h>

#include "cpu/core.hh"
#include "workloads/dgemm_workload.hh"

namespace tca {
namespace workloads {
namespace {

DgemmConfig
tinyConfig(uint32_t tile = 4)
{
    DgemmConfig conf;
    conf.n = 64; // 2x2x2 = 8 block triples of 32x32
    conf.blockN = 32;
    conf.tileN = tile;
    return conf;
}

TEST(DgemmWorkloadTest, BaselineUopCountMatchesEstimate)
{
    DgemmWorkload wl(tinyConfig());
    auto ops = trace::collect(*wl.makeBaselineTrace());
    EXPECT_EQ(ops.size(), wl.baselineUopEstimate());
}

TEST(DgemmWorkloadTest, InvocationCountFormula)
{
    // 64/32 = 2 blocks per dim -> 8 block triples; each holds
    // (32/4)^3 = 512 tiles.
    DgemmWorkload wl(tinyConfig(4));
    EXPECT_EQ(wl.numInvocations(), 8u * 512u);

    DgemmWorkload wl8(tinyConfig(8));
    EXPECT_EQ(wl8.numInvocations(), 8u * 64u);
}

TEST(DgemmWorkloadTest, AcceleratedTraceHasOneAccelPerTile)
{
    DgemmWorkload wl(tinyConfig(8));
    auto src = wl.makeAcceleratedTrace();
    uint64_t expected = src->expectedLength();
    auto ops = trace::collect(*src);
    EXPECT_EQ(ops.size(), expected);
    uint64_t accels = 0;
    for (const auto &op : ops)
        accels += op.isAccel() ? 1 : 0;
    EXPECT_EQ(accels, wl.numInvocations());
}

TEST(DgemmWorkloadTest, BaselineFunctionalResultCorrect)
{
    DgemmWorkload wl(tinyConfig());
    wl.makeBaselineTrace();
    EXPECT_TRUE(wl.verifyFunctional());
}

TEST(DgemmWorkloadTest, AcceleratedFunctionalViaSimulation)
{
    // Run the accelerated trace through the core; the MatrixTca
    // computes the product tile by tile. The result must match the
    // element-wise reference.
    DgemmConfig conf;
    conf.n = 32; // one block triple keeps the test fast
    conf.blockN = 32;
    conf.tileN = 8;
    DgemmWorkload wl(conf);

    auto trace = wl.makeAcceleratedTrace();
    mem::MemHierarchy hierarchy{mem::HierarchyConfig{}};
    cpu::Core core(cpu::a72CoreConfig(), hierarchy);
    core.bindAccelerator(&wl.device(), model::TcaMode::L_T);
    cpu::SimResult r = core.run(*trace);

    EXPECT_EQ(r.accelInvocations, wl.numInvocations());
    EXPECT_TRUE(wl.verifyFunctional());
}

class DgemmTileTest : public testing::TestWithParam<uint32_t>
{};

TEST_P(DgemmTileTest, EveryTileSizeComputesCorrectProduct)
{
    DgemmConfig conf;
    conf.n = 32;
    conf.blockN = 32;
    conf.tileN = GetParam();
    DgemmWorkload wl(conf);

    auto trace = wl.makeAcceleratedTrace();
    mem::MemHierarchy hierarchy{mem::HierarchyConfig{}};
    cpu::Core core(cpu::a72CoreConfig(), hierarchy);
    core.bindAccelerator(&wl.device(), model::TcaMode::L_T);
    cpu::SimResult r = core.run(*trace);
    EXPECT_EQ(r.accelInvocations, wl.numInvocations());
    EXPECT_TRUE(wl.verifyFunctional());
}

TEST_P(DgemmTileTest, EveryModePreservesFunctionalResult)
{
    DgemmConfig conf;
    conf.n = 32;
    conf.blockN = 32;
    conf.tileN = GetParam();
    DgemmWorkload wl(conf);
    for (model::TcaMode mode : model::allTcaModes) {
        auto trace = wl.makeAcceleratedTrace();
        mem::MemHierarchy hierarchy{mem::HierarchyConfig{}};
        cpu::Core core(cpu::a72CoreConfig(), hierarchy);
        core.bindAccelerator(&wl.device(), mode);
        core.run(*trace);
        EXPECT_TRUE(wl.verifyFunctional()) << tcaModeName(mode);
    }
}

INSTANTIATE_TEST_SUITE_P(Tiles, DgemmTileTest,
                         testing::Values(2u, 4u, 8u),
                         [](const testing::TestParamInfo<uint32_t>
                                &info) {
                             return "t" +
                                    std::to_string(info.param);
                         });

TEST(DgemmWorkloadTest, AcceleratedWithoutSimulationFailsVerify)
{
    // If no one executes the tiles, C stays zero and verification
    // fails (guards against the verify being a no-op).
    DgemmConfig conf;
    conf.n = 32;
    conf.tileN = 8;
    DgemmWorkload wl(conf);
    wl.makeAcceleratedTrace();
    EXPECT_FALSE(wl.verifyFunctional());
}

TEST(DgemmWorkloadTest, AddressLayoutRowMajorDisjoint)
{
    DgemmConfig conf = tinyConfig();
    DgemmWorkload wl(conf);
    // Row-major stride.
    EXPECT_EQ(wl.aElem(0, 1) - wl.aElem(0, 0), 8u);
    EXPECT_EQ(wl.aElem(1, 0) - wl.aElem(0, 0),
              static_cast<uint64_t>(conf.n) * 8);
    // A, B, C regions distinct.
    uint64_t mat_bytes = static_cast<uint64_t>(conf.n) * conf.n * 8;
    EXPECT_GE(wl.bElem(0, 0), wl.aElem(0, 0) + mat_bytes);
    EXPECT_GE(wl.cElem(0, 0), wl.bElem(0, 0) + mat_bytes);
}

TEST(DgemmWorkloadTest, MostBaselineUopsAcceleratable)
{
    DgemmWorkload wl(tinyConfig());
    auto ops = trace::collect(*wl.makeBaselineTrace());
    uint64_t acc = 0;
    for (const auto &op : ops)
        acc += op.acceleratable ? 1 : 0;
    double frac = static_cast<double>(acc) /
                  static_cast<double>(ops.size());
    // Only the addressing glue (2 of ~100 uops per strip element) is
    // not acceleratable.
    EXPECT_GT(frac, 0.9);
    EXPECT_LT(frac, 1.0);
}

TEST(DgemmWorkloadDeathTest, BadGeometryFatal)
{
    DgemmConfig conf;
    conf.n = 48; // not a multiple of 32
    EXPECT_EXIT(DgemmWorkload{conf}, testing::ExitedWithCode(1), "");

    DgemmConfig conf2;
    conf2.n = 64;
    conf2.blockN = 32;
    conf2.tileN = 5;
    EXPECT_EXIT(DgemmWorkload{conf2}, testing::ExitedWithCode(1), "");
}

TEST(DgemmWorkloadTest, LatencyEstimateGrowsWithTile)
{
    DgemmWorkload w2(tinyConfig(2)), w8(tinyConfig(8));
    EXPECT_LT(w2.accelLatencyEstimate(), w8.accelLatencyEstimate());
}

} // namespace
} // namespace workloads
} // namespace tca
