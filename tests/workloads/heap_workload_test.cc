#include <gtest/gtest.h>

#include "workloads/heap_workload.hh"

namespace tca {
namespace workloads {
namespace {

HeapConfig
smallConfig()
{
    HeapConfig conf;
    conf.numCalls = 100;
    conf.fillerUopsPerGap = 50;
    conf.seed = 11;
    return conf;
}

TEST(HeapWorkloadTest, InvocationCountMatchesCalls)
{
    HeapWorkload wl(smallConfig());
    EXPECT_EQ(wl.numInvocations(), 100u);
    EXPECT_GT(wl.numMallocs(), 0u);
    EXPECT_LT(wl.numMallocs(), 100u); // some frees happen too
}

TEST(HeapWorkloadTest, BaselineContainsSoftwareSequences)
{
    HeapWorkload wl(smallConfig());
    auto ops = trace::collect(*wl.makeBaselineTrace());
    uint64_t acceleratable = 0, accel_uops = 0;
    for (const auto &op : ops) {
        acceleratable += op.acceleratable ? 1 : 0;
        accel_uops += op.isAccel() ? 1 : 0;
    }
    EXPECT_EQ(accel_uops, 0u);
    EXPECT_EQ(acceleratable, wl.acceleratableUops());
}

TEST(HeapWorkloadTest, AcceleratedUsesOneUopPerCall)
{
    HeapWorkload wl(smallConfig());
    auto ops = trace::collect(*wl.makeAcceleratedTrace());
    uint64_t accel_uops = 0;
    for (const auto &op : ops)
        accel_uops += op.isAccel() ? 1 : 0;
    EXPECT_EQ(accel_uops, 100u);
    // 100 calls * 50 filler + 100 accel uops.
    EXPECT_EQ(ops.size(), 100u * 50u + 100u);
}

TEST(HeapWorkloadTest, AcceleratableUopsUsePaperBudgets)
{
    HeapWorkload wl(smallConfig());
    uint64_t frees = wl.numInvocations() - wl.numMallocs();
    EXPECT_EQ(wl.acceleratableUops(),
              wl.numMallocs() * 69 + frees * 37);
}

TEST(HeapWorkloadTest, FreeDependsOnMallocRegister)
{
    HeapWorkload wl(smallConfig());
    auto ops = trace::collect(*wl.makeAcceleratedTrace());
    // Every free (Accel with src reg) must read a register some
    // earlier malloc (Accel with dst) wrote.
    std::set<trace::RegId> written;
    for (const auto &op : ops) {
        if (!op.isAccel())
            continue;
        if (op.dst != trace::noReg) {
            written.insert(op.dst);
        } else {
            ASSERT_NE(op.src[0], trace::noReg);
            EXPECT_TRUE(written.count(op.src[0]))
                << "free reads a register no malloc wrote";
        }
    }
}

TEST(HeapWorkloadTest, SingleCycleLatencyEstimate)
{
    HeapWorkload wl(smallConfig());
    EXPECT_DOUBLE_EQ(wl.accelLatencyEstimate(), 1.0);
}

TEST(HeapWorkloadTest, ScriptBalancedFreesNeverExceedMallocs)
{
    HeapWorkload wl(smallConfig());
    auto ops = trace::collect(*wl.makeAcceleratedTrace());
    int64_t live = 0;
    for (const auto &op : ops) {
        if (!op.isAccel())
            continue;
        live += (op.dst != trace::noReg) ? 1 : -1;
        EXPECT_GE(live, 0);
    }
}

TEST(HeapWorkloadTest, InvocationFrequencyScalesWithGap)
{
    HeapConfig dense = smallConfig();
    dense.fillerUopsPerGap = 10;
    HeapConfig sparse = smallConfig();
    sparse.fillerUopsPerGap = 500;
    HeapWorkload wd(dense), ws(sparse);
    auto nd = trace::collect(*wd.makeBaselineTrace()).size();
    auto ns = trace::collect(*ws.makeBaselineTrace()).size();
    EXPECT_LT(nd, ns);
}

TEST(HeapWorkloadTest, RepeatedAcceleratedTracesIdentical)
{
    HeapWorkload wl(smallConfig());
    auto a = trace::collect(*wl.makeAcceleratedTrace());
    auto b = trace::collect(*wl.makeAcceleratedTrace());
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); i += 31) {
        EXPECT_EQ(a[i].cls, b[i].cls);
        EXPECT_EQ(a[i].accelInvocation, b[i].accelInvocation);
    }
}

} // namespace
} // namespace workloads
} // namespace tca
