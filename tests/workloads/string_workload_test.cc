#include <gtest/gtest.h>

#include "cpu/core.hh"
#include "workloads/string_workload.hh"

namespace tca {
namespace workloads {
namespace {

StringConfig
smallConfig()
{
    StringConfig conf;
    conf.numStrings = 16;
    conf.numCompares = 50;
    conf.fillerUopsPerGap = 40;
    return conf;
}

TEST(StringWorkloadTest, InvocationCount)
{
    StringWorkload wl(smallConfig());
    EXPECT_EQ(wl.numInvocations(), 50u);
}

TEST(StringWorkloadTest, BaselineAcceleratableUopsMatchEstimate)
{
    StringWorkload wl(smallConfig());
    auto ops = trace::collect(*wl.makeBaselineTrace());
    uint64_t acc = 0;
    for (const auto &op : ops)
        acc += op.acceleratable ? 1 : 0;
    EXPECT_EQ(acc, wl.acceleratableUops());
}

TEST(StringWorkloadTest, AcceleratedHasOneUopPerCompare)
{
    StringWorkload wl(smallConfig());
    auto ops = trace::collect(*wl.makeAcceleratedTrace());
    uint64_t accels = 0;
    for (const auto &op : ops)
        accels += op.isAccel() ? 1 : 0;
    EXPECT_EQ(accels, 50u);
}

TEST(StringWorkloadTest, FunctionalVerificationViaSimulation)
{
    StringWorkload wl(smallConfig());
    auto trace = wl.makeAcceleratedTrace();
    mem::MemHierarchy hierarchy{mem::HierarchyConfig{}};
    cpu::Core core(cpu::a72CoreConfig(), hierarchy);
    core.bindAccelerator(&wl.device(), model::TcaMode::L_T);
    cpu::SimResult r = core.run(*trace);
    EXPECT_EQ(r.accelInvocations, 50u);
    EXPECT_TRUE(wl.verifyFunctional());
}

TEST(StringWorkloadTest, UnexecutedComparesFailVerification)
{
    StringWorkload wl(smallConfig());
    wl.makeAcceleratedTrace();
    // No simulation ran: nothing executed.
    EXPECT_FALSE(wl.verifyFunctional());
}

TEST(StringWorkloadTest, DuplicateFractionProducesEqualCompares)
{
    StringConfig conf = smallConfig();
    conf.numCompares = 400;
    conf.duplicateFraction = 0.5;
    StringWorkload wl(conf);
    // Run to get results.
    auto trace = wl.makeAcceleratedTrace();
    mem::MemHierarchy hierarchy{mem::HierarchyConfig{}};
    cpu::Core core(cpu::a72CoreConfig(), hierarchy);
    core.bindAccelerator(&wl.device(), model::TcaMode::L_T);
    core.run(*trace);
    auto &tca = static_cast<accel::StringTca &>(wl.device());
    uint64_t equal = 0;
    for (uint32_t id = 0; id < 400; ++id)
        equal += tca.result(id).equal ? 1 : 0;
    // At least the duplicate pairs match (plus rare genuine ties).
    EXPECT_GT(equal, 130u);
    EXPECT_LT(equal, 300u);
}

TEST(StringWorkloadTest, LatencyEstimatePositiveAndBounded)
{
    StringWorkload wl(smallConfig());
    double est = wl.accelLatencyEstimate();
    EXPECT_GT(est, 2.0);
    EXPECT_LT(est, 40.0); // strings are <= 96B
}

TEST(StringWorkloadTest, DeterministicScripts)
{
    StringWorkload a(smallConfig()), b(smallConfig());
    auto ops_a = trace::collect(*a.makeBaselineTrace());
    auto ops_b = trace::collect(*b.makeBaselineTrace());
    ASSERT_EQ(ops_a.size(), ops_b.size());
    for (size_t i = 0; i < ops_a.size(); i += 13) {
        EXPECT_EQ(ops_a[i].cls, ops_b[i].cls);
        EXPECT_EQ(ops_a[i].addr, ops_b[i].addr);
    }
}

} // namespace
} // namespace workloads
} // namespace tca
