#include <gtest/gtest.h>

#include "workloads/synthetic.hh"

namespace tca {
namespace workloads {
namespace {

SyntheticConfig
smallConfig()
{
    SyntheticConfig conf;
    conf.fillerUops = 5000;
    conf.numInvocations = 10;
    conf.regionUops = 100;
    conf.accelLatency = 30;
    conf.seed = 5;
    return conf;
}

TEST(SyntheticWorkloadTest, BaselineLengthMatchesConfig)
{
    SyntheticWorkload wl(smallConfig());
    auto tr = wl.makeBaselineTrace();
    auto ops = trace::collect(*tr);
    EXPECT_EQ(ops.size(), 5000u + 10u * 100u);
    EXPECT_EQ(ops.size(), wl.baselineUops());
}

TEST(SyntheticWorkloadTest, AcceleratedReplacesRegionsWithAccelUops)
{
    SyntheticWorkload wl(smallConfig());
    auto tr = wl.makeAcceleratedTrace();
    auto ops = trace::collect(*tr);
    EXPECT_EQ(ops.size(), 5000u + 10u);
    uint64_t accels = 0;
    for (const auto &op : ops)
        accels += op.isAccel() ? 1 : 0;
    EXPECT_EQ(accels, 10u);
}

TEST(SyntheticWorkloadTest, AcceleratableFractionMatches)
{
    SyntheticWorkload wl(smallConfig());
    auto tr = wl.makeBaselineTrace();
    auto ops = trace::collect(*tr);
    uint64_t acc = 0;
    for (const auto &op : ops)
        acc += op.acceleratable ? 1 : 0;
    EXPECT_EQ(acc, 10u * 100u);
}

TEST(SyntheticWorkloadTest, FillerStreamsIdenticalAcrossVariants)
{
    SyntheticWorkload wl(smallConfig());
    auto base = trace::collect(*wl.makeBaselineTrace());
    auto accel = trace::collect(*wl.makeAcceleratedTrace());
    // Strip acceleratable/accel uops: the residue must be identical.
    std::vector<trace::MicroOp> base_filler, accel_filler;
    for (const auto &op : base)
        if (!op.acceleratable)
            base_filler.push_back(op);
    for (const auto &op : accel)
        if (!op.isAccel())
            accel_filler.push_back(op);
    ASSERT_EQ(base_filler.size(), accel_filler.size());
    for (size_t i = 0; i < base_filler.size(); ++i) {
        EXPECT_EQ(base_filler[i].cls, accel_filler[i].cls);
        EXPECT_EQ(base_filler[i].dst, accel_filler[i].dst);
        EXPECT_EQ(base_filler[i].addr, accel_filler[i].addr);
    }
}

TEST(SyntheticWorkloadTest, DeterministicAcrossInstances)
{
    SyntheticWorkload a(smallConfig()), b(smallConfig());
    auto ops_a = trace::collect(*a.makeBaselineTrace());
    auto ops_b = trace::collect(*b.makeBaselineTrace());
    ASSERT_EQ(ops_a.size(), ops_b.size());
    for (size_t i = 0; i < ops_a.size(); i += 97) {
        EXPECT_EQ(ops_a[i].cls, ops_b[i].cls);
        EXPECT_EQ(ops_a[i].addr, ops_b[i].addr);
    }
}

TEST(SyntheticWorkloadTest, SeedChangesPlacement)
{
    SyntheticConfig c1 = smallConfig();
    SyntheticConfig c2 = smallConfig();
    c2.seed = 99;
    SyntheticWorkload a(c1), b(c2);
    auto ops_a = trace::collect(*a.makeAcceleratedTrace());
    auto ops_b = trace::collect(*b.makeAcceleratedTrace());
    // Find accel positions.
    std::vector<size_t> pos_a, pos_b;
    for (size_t i = 0; i < ops_a.size(); ++i)
        if (ops_a[i].isAccel())
            pos_a.push_back(i);
    for (size_t i = 0; i < ops_b.size(); ++i)
        if (ops_b[i].isAccel())
            pos_b.push_back(i);
    EXPECT_NE(pos_a, pos_b);
}

TEST(SyntheticWorkloadTest, MemRequestsRegisteredWithDevice)
{
    SyntheticConfig conf = smallConfig();
    conf.accelMemRequests = 4;
    SyntheticWorkload wl(conf);
    wl.makeAcceleratedTrace();
    std::vector<cpu::AccelRequest> reqs;
    static_cast<accel::FixedLatencyTca &>(wl.device())
        .beginInvocation(0, reqs);
    EXPECT_EQ(reqs.size(), 4u);
    EXPECT_DOUBLE_EQ(wl.accelLatencyEstimate(), 30.0 + 8.0);
}

TEST(SyntheticWorkloadTest, MixRatiosRoughlyHonored)
{
    SyntheticConfig conf = smallConfig();
    conf.fillerUops = 50000;
    conf.numInvocations = 0;
    SyntheticWorkload wl(conf);
    auto ops = trace::collect(*wl.makeBaselineTrace());
    uint64_t loads = 0, stores = 0, branches = 0;
    for (const auto &op : ops) {
        loads += op.isLoad();
        stores += op.isStore();
        branches += op.isBranch();
    }
    double n = static_cast<double>(ops.size());
    EXPECT_NEAR(loads / n, conf.loadFraction, 0.02);
    EXPECT_NEAR(stores / n, conf.storeFraction, 0.02);
    EXPECT_NEAR(branches / n, conf.branchFraction, 0.02);
}

} // namespace
} // namespace workloads
} // namespace tca
