/**
 * @file
 * Cross-run stat diff CLI. Compares two machine-readable run
 * artifacts (stats.json or BENCH_*.json), prints a per-stat delta
 * table, and exits non-zero when a watched metric regresses past the
 * threshold — so both perf and model-accuracy regressions are
 * CI-detectable:
 *
 *   tca_compare baseline/BENCH_heap_hot.json out/BENCH_heap_hot.json
 *   tca_compare --threshold 10 --watch model_error old.json new.json
 *
 * Exit codes: 0 no watched regression, 1 watched regression or
 * missing watched stat, 2 usage or parse error.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "obs/stat_diff.hh"

using namespace tca;
using namespace tca::obs;

namespace {

int
usage(const char *argv0, int code)
{
    std::fprintf(
        code ? stderr : stdout,
        "usage: %s [options] OLD.json NEW.json\n"
        "\n"
        "Diff two run artifacts (stats.json or BENCH_*.json) and exit\n"
        "non-zero when a watched metric regresses past the threshold.\n"
        "  --threshold PCT   relative change treated as noise\n"
        "                    (default 5)\n"
        "  --watch PREFIX    gate only stats under this dot-path\n"
        "                    prefix (repeatable; default: every stat\n"
        "                    with a known good-direction)\n"
        "  --prefix PREFIX   compare only stats under this dot-path\n"
        "                    prefix, e.g. --prefix cpu. (repeatable;\n"
        "                    stats outside are not even reported)\n"
        "  --all             print unchanged stats too\n"
        "  --informational   always exit 0 (report, never gate)\n",
        argv0);
    return code;
}

bool
readFile(const std::string &path, std::string &out)
{
    std::ifstream in(path);
    if (!in)
        return false;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    out = buffer.str();
    return true;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    DiffOptions options;
    bool show_all = false;
    bool informational = false;
    std::string old_path, new_path;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", arg.c_str());
                std::exit(usage(argv[0], 2));
            }
            return argv[++i];
        };
        if (arg == "--threshold") {
            options.thresholdPercent = std::atof(value());
        } else if (arg == "--watch") {
            options.watch.push_back(value());
        } else if (arg == "--prefix") {
            options.prefixes.push_back(value());
        } else if (arg == "--all") {
            show_all = true;
        } else if (arg == "--informational") {
            informational = true;
        } else if (arg == "--help" || arg == "-h") {
            return usage(argv[0], 0);
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "unknown flag '%s'\n", arg.c_str());
            return usage(argv[0], 2);
        } else if (old_path.empty()) {
            old_path = arg;
        } else if (new_path.empty()) {
            new_path = arg;
        } else {
            std::fprintf(stderr, "extra argument '%s'\n", arg.c_str());
            return usage(argv[0], 2);
        }
    }
    if (old_path.empty() || new_path.empty())
        return usage(argv[0], 2);
    if (options.thresholdPercent < 0.0) {
        std::fprintf(stderr, "--threshold must be >= 0\n");
        return 2;
    }

    std::string old_text, new_text;
    if (!readFile(old_path, old_text)) {
        std::fprintf(stderr, "cannot read '%s'\n", old_path.c_str());
        return 2;
    }
    if (!readFile(new_path, new_text)) {
        std::fprintf(stderr, "cannot read '%s'\n", new_path.c_str());
        return 2;
    }

    DiffReport report;
    std::string error;
    if (!diffJsonDocuments(old_text, new_text, options, report, &error)) {
        std::fprintf(stderr, "parse error: %s\n", error.c_str());
        return 2;
    }

    std::printf("--- %s\n+++ %s\n", old_path.c_str(), new_path.c_str());
    printDiff(report, std::cout, !show_all);
    std::printf("\n%zu improved, %zu watched regression(s), "
                "%zu watched stat(s) missing "
                "(threshold %.2f%%)\n",
                report.numImprovements, report.numRegressions,
                report.numMissing, options.thresholdPercent);

    if (report.failed() && !informational) {
        std::printf("FAIL: watched metrics regressed\n");
        return 1;
    }
    std::printf("OK\n");
    return 0;
}
