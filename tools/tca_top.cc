/**
 * @file
 * Live terminal monitor for telemetry streams (the `top` of the
 * simulator). Tails the NDJSON stream a run writes with
 * TCA_TELEMETRY=ndjson and renders per-scenario progress bars, a
 * per-run table (epochs, cycles, IPC, ROB occupancy, accelerator
 * utilization), a stall-cause bar chart, and the hottest stats
 * counters by last-epoch delta.
 *
 * Modes:
 *   tca_top STREAM             follow: tail the file live (ANSI
 *                              redraw; ctrl-C to quit). A staleness
 *                              warning appears when no record — not
 *                              even a heartbeat — arrives for a while:
 *                              fresh heartbeats are the liveness
 *                              signal, so a long-silent stream means
 *                              the producer is likely stuck or gone.
 *   tca_top --replay STREAM    re-render a recorded stream with
 *                              periodic redraws, then print the final
 *                              screen (demo/debug).
 *   tca_top --once STREAM      consume the whole stream and print one
 *                              plain screen (CI-friendly; the screen
 *                              is a pure function of the stream, so
 *                              goldens are stable).
 *
 * The model + renderer live in obs/telemetry.hh so tests golden the
 * exact screen this CLI prints.
 */

#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "obs/telemetry.hh"

using namespace tca;

namespace {

int
usage(const char *argv0, int code)
{
    std::fprintf(
        code ? stderr : stdout,
        "usage: %s [--once | --replay] [--interval-ms N] [--width N]\n"
        "          [--top N] [--stale-secs N] STREAM.ndjson\n"
        "\n"
        "Renders a live view of a TCA_TELEMETRY=ndjson stream.\n"
        "  (default)        follow the file like tail -f, redrawing as\n"
        "                   records arrive; warns when the stream goes\n"
        "                   silent (no heartbeat = not alive)\n"
        "  --once           consume the whole file, print one plain\n"
        "                   screen, exit (for CI and goldens)\n"
        "  --replay         redraw every --interval-ms while replaying\n"
        "                   the recorded stream, then print the final\n"
        "                   screen\n"
        "  --interval-ms N  redraw period in follow/replay mode\n"
        "                   (default 500)\n"
        "  --width N        screen width (default 80)\n"
        "  --top N          hottest-counter rows (default 8)\n"
        "  --stale-secs N   follow mode: warn after N silent seconds\n"
        "                   (default 30)\n",
        argv0);
    return code;
}

/** Clear screen + home cursor, then the rendered screen. */
void
redraw(const obs::TelemetryModel &model, size_t width, size_t top_n)
{
    std::fputs("\x1b[2J\x1b[H", stdout);
    std::fputs(obs::renderTopScreen(model, width, top_n).c_str(),
               stdout);
    std::fflush(stdout);
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    bool once = false;
    bool replay = false;
    long interval_ms = 500;
    size_t width = 80;
    size_t top_n = 8;
    double stale_secs = 30.0;
    std::string path;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", arg.c_str());
                std::exit(usage(argv[0], 2));
            }
            return argv[++i];
        };
        if (arg == "--once") {
            once = true;
        } else if (arg == "--replay") {
            replay = true;
        } else if (arg == "--interval-ms") {
            interval_ms = std::atol(value());
            if (interval_ms < 1) {
                std::fprintf(stderr, "--interval-ms must be >= 1\n");
                return 2;
            }
        } else if (arg == "--width") {
            width = static_cast<size_t>(std::atol(value()));
        } else if (arg == "--top") {
            top_n = static_cast<size_t>(std::atol(value()));
        } else if (arg == "--stale-secs") {
            stale_secs = std::atof(value());
        } else if (arg == "--help" || arg == "-h") {
            return usage(argv[0], 0);
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "unknown flag '%s'\n", arg.c_str());
            return usage(argv[0], 2);
        } else if (path.empty()) {
            path = arg;
        } else {
            std::fprintf(stderr, "more than one stream given\n");
            return usage(argv[0], 2);
        }
    }
    if (path.empty()) {
        std::fprintf(stderr, "no stream given\n");
        return usage(argv[0], 2);
    }
    if (once && replay) {
        std::fprintf(stderr, "--once and --replay are exclusive\n");
        return 2;
    }

    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "cannot open '%s'\n", path.c_str());
        return 1;
    }

    obs::TelemetryModel model;
    std::string line;

    if (once) {
        while (std::getline(in, line))
            model.consumeLine(line);
        std::fputs(obs::renderTopScreen(model, width, top_n).c_str(),
                   stdout);
        return model.numRecords() > 0 ? 0 : 1;
    }

    if (replay) {
        // Records carry no wall clock, so replay pacing is by record
        // count: one redraw per `interval_ms`-worth of screen updates
        // is pointless offline — instead redraw every 64 records and
        // sleep briefly so the progression is visible.
        uint64_t since_redraw = 0;
        while (std::getline(in, line)) {
            model.consumeLine(line);
            if (++since_redraw >= 64) {
                since_redraw = 0;
                redraw(model, width, top_n);
                ::usleep(static_cast<useconds_t>(interval_ms) * 1000);
            }
        }
        std::fputs("\x1b[2J\x1b[H", stdout);
        std::fputs(obs::renderTopScreen(model, width, top_n).c_str(),
                   stdout);
        return model.numRecords() > 0 ? 0 : 1;
    }

    // Follow mode: tail the stream. getline() hitting EOF clears the
    // stream state and we retry after a sleep — the producer flushes
    // whole lines, so a successful getline is always a whole record.
    double silent_secs = 0.0;
    bool dirty = true;
    std::string partial;
    while (true) {
        bool progressed = false;
        while (std::getline(in, line)) {
            // A writer mid-line can hand us a prefix; only lines
            // ending at a newline were complete. tellg()-based
            // reposition is overkill here: flushes are per record, so
            // partial reads are rare — accumulate just in case.
            if (in.eof()) {
                partial += line;
                break;
            }
            if (!partial.empty()) {
                line = partial + line;
                partial.clear();
            }
            model.consumeLine(line);
            progressed = true;
        }
        in.clear();
        if (progressed) {
            silent_secs = 0.0;
            dirty = true;
        }
        if (dirty) {
            redraw(model, width, top_n);
            dirty = false;
            if (silent_secs >= stale_secs) {
                std::printf("\nSTALE: no telemetry for %.0fs — producer "
                            "stuck or gone? (ctrl-C to quit)\n",
                            silent_secs);
                std::fflush(stdout);
            }
        }
        ::usleep(static_cast<useconds_t>(interval_ms) * 1000);
        silent_secs += static_cast<double>(interval_ms) / 1000.0;
        if (silent_secs >= stale_secs)
            dirty = true;
    }
    return 0;
}
