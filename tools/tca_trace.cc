/**
 * @file
 * Critical-path and timeline analytics CLI. Consumes the cp.json
 * written by the CriticalPathTracker and the Chrome trace-event
 * documents written by ChromeTraceWriter, and answers the questions a
 * perf investigation starts with — where did the cycles go, what is
 * the retained tail of the critical path, how much wall time does each
 * timeline track hold, and how did attribution shift between two runs:
 *
 *   tca_trace summary out/fig5_heap/cp.json
 *   tca_trace path --limit 40 out/fig5_heap/cp.json
 *   tca_trace spans out/fig5_heap/trace.json
 *   tca_trace diff baseline/cp.json out/cp.json
 *   tca_trace flame --limit 20 --svg flame.svg out/profile.collapsed
 *   tca_trace flame --diff old/profile.collapsed out/profile.collapsed
 *   tca_trace regions --check out/BENCH_sim_throughput.json
 *
 * `diff` reuses the tca_compare stat-diff engine, so its table format,
 * threshold semantics, and exit codes match across the two tools.
 * `flame` and `regions` consume the host self-profiling artifacts
 * (docs/PROFILING.md): collapsed stacks from obs::HostSampler and the
 * host.regions subtree of BENCH_*.json.
 *
 * Exit codes: 0 success, 1 diff regression or failed --check,
 * 2 usage or parse error.
 */

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <inttypes.h>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "obs/critical_path.hh"
#include "obs/flamegraph.hh"
#include "obs/stat_diff.hh"
#include "util/json.hh"

using namespace tca;
using namespace tca::obs;

namespace {

int
usage(const char *argv0, int code)
{
    std::fprintf(
        code ? stderr : stdout,
        "usage: %s COMMAND [options] FILE...\n"
        "\n"
        "Analyze critical-path (cp.json) and Chrome trace artifacts.\n"
        "\n"
        "commands:\n"
        "  summary CP.json          per-cause cycle attribution table\n"
        "  path [--limit N] CP.json retained critical-path tail,\n"
        "                           youngest segment first\n"
        "  spans TRACE.json         per-track duration totals for a\n"
        "                           Chrome trace-event document\n"
        "  diff [--threshold PCT] OLD.json NEW.json\n"
        "                           stat diff of two cp.json files;\n"
        "                           exits 1 on watched regression\n"
        "  flame [--limit N] [--svg OUT.svg] PROFILE.collapsed\n"
        "                           self/total table (and optional\n"
        "                           SVG flamegraph) from a collapsed-\n"
        "                           stack profile\n"
        "  flame --diff [--limit N] OLD.collapsed NEW.collapsed\n"
        "                           largest self-share shifts between\n"
        "                           two profiles\n"
        "  regions [--check] BENCH.json\n"
        "                           host.regions phase table; --check\n"
        "                           verifies self-times telescope to\n"
        "                           the run wall time (exit 1 when\n"
        "                           out of tolerance)\n",
        argv0);
    return code;
}

bool
readFile(const std::string &path, std::string &out)
{
    std::ifstream in(path);
    if (!in)
        return false;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    out = buffer.str();
    return true;
}

/** Load and parse one cp.json, exiting 2 with a message on failure. */
CpReport
loadCpReport(const char *argv0, const std::string &path)
{
    std::string text;
    if (!readFile(path, text)) {
        std::fprintf(stderr, "%s: cannot read '%s'\n", argv0,
                     path.c_str());
        std::exit(2);
    }
    CpReport report;
    std::string error;
    if (!parseCpJson(text, report, &error)) {
        std::fprintf(stderr, "%s: %s: %s\n", argv0, path.c_str(),
                     error.c_str());
        std::exit(2);
    }
    return report;
}

int
cmdSummary(const char *argv0, const std::vector<std::string> &args)
{
    if (args.size() != 1)
        return usage(argv0, 2);
    CpReport report = loadCpReport(argv0, args[0]);
    std::fputs(formatCpSummary(report).c_str(), stdout);
    return 0;
}

int
cmdPath(const char *argv0, const std::vector<std::string> &args)
{
    size_t limit = 0;
    std::string path;
    for (size_t i = 0; i < args.size(); ++i) {
        if (args[i] == "--limit") {
            if (i + 1 >= args.size()) {
                std::fprintf(stderr, "--limit needs a value\n");
                return usage(argv0, 2);
            }
            limit = static_cast<size_t>(
                std::strtoull(args[++i].c_str(), nullptr, 10));
        } else if (!args[i].empty() && args[i][0] == '-') {
            std::fprintf(stderr, "unknown flag '%s'\n", args[i].c_str());
            return usage(argv0, 2);
        } else if (path.empty()) {
            path = args[i];
        } else {
            std::fprintf(stderr, "extra argument '%s'\n",
                         args[i].c_str());
            return usage(argv0, 2);
        }
    }
    if (path.empty())
        return usage(argv0, 2);
    CpReport report = loadCpReport(argv0, path);
    std::fputs(formatCpPath(report, limit).c_str(), stdout);
    return 0;
}

/** Aggregated durations for one timeline track (trace tid). */
struct TrackTotals
{
    std::string name;     ///< thread_name metadata, if present
    uint64_t events = 0;  ///< completed "X" events + matched spans
    uint64_t cycles = 0;  ///< summed duration
    uint64_t maxCycles = 0;
    uint64_t openSpans = 0; ///< "b" events with no matching "e"
};

uint64_t
numberField(const JsonValue &event, const char *name)
{
    const JsonValue *v = event.find(name);
    return (v && v->isNumber()) ? static_cast<uint64_t>(v->number) : 0;
}

std::string
stringField(const JsonValue &event, const char *name)
{
    const JsonValue *v = event.find(name);
    return (v && v->isString()) ? v->str : std::string();
}

int
cmdSpans(const char *argv0, const std::vector<std::string> &args)
{
    if (args.size() != 1)
        return usage(argv0, 2);
    std::string text;
    if (!readFile(args[0], text)) {
        std::fprintf(stderr, "%s: cannot read '%s'\n", argv0,
                     args[0].c_str());
        return 2;
    }
    JsonValue doc;
    std::string error;
    if (!parseJson(text, doc, &error)) {
        std::fprintf(stderr, "%s: %s: %s\n", argv0, args[0].c_str(),
                     error.c_str());
        return 2;
    }
    const JsonValue *events = doc.find("traceEvents");
    if (!events || !events->isArray()) {
        std::fprintf(stderr, "%s: %s: no traceEvents array\n", argv0,
                     args[0].c_str());
        return 2;
    }

    std::map<uint64_t, TrackTotals> tracks;
    // Open async spans keyed by (tid, id): ChromeTraceWriter emits
    // "b"/"e" pairs sharing both, and ts is monotonic per track.
    std::map<std::pair<uint64_t, uint64_t>, uint64_t> open;
    uint64_t total_events = 0;

    for (const JsonValue &event : events->items) {
        if (!event.isObject())
            continue;
        std::string phase = stringField(event, "ph");
        if (phase == "M" || phase == "C")
            continue; // metadata / counter samples carry no duration
        uint64_t tid = numberField(event, "tid");
        uint64_t ts = numberField(event, "ts");
        TrackTotals &track = tracks[tid];
        ++total_events;
        if (phase == "X") {
            uint64_t dur = numberField(event, "dur");
            ++track.events;
            track.cycles += dur;
            if (dur > track.maxCycles)
                track.maxCycles = dur;
        } else if (phase == "b") {
            open[{tid, numberField(event, "id")}] = ts;
            ++track.openSpans;
        } else if (phase == "e") {
            auto it = open.find({tid, numberField(event, "id")});
            if (it == open.end())
                continue; // unmatched end: ignore
            uint64_t dur = ts >= it->second ? ts - it->second : 0;
            open.erase(it);
            --track.openSpans;
            ++track.events;
            track.cycles += dur;
            if (dur > track.maxCycles)
                track.maxCycles = dur;
        }
    }

    // Name tracks from thread_name metadata in a second pass so order
    // of metadata vs. data events does not matter.
    for (const JsonValue &event : events->items) {
        if (!event.isObject() ||
            stringField(event, "name") != "thread_name") {
            continue;
        }
        auto it = tracks.find(numberField(event, "tid"));
        if (it == tracks.end())
            continue;
        const JsonValue *event_args = event.find("args");
        if (event_args)
            it->second.name = stringField(*event_args, "name");
    }

    std::printf("%s: %" PRIu64 " duration events on %zu tracks\n\n",
                args[0].c_str(), total_events, tracks.size());
    std::printf("%-32s  %8s  %12s  %10s\n", "track", "events",
                "cycles", "max");
    for (const auto &entry : tracks) {
        const TrackTotals &track = entry.second;
        std::string label = track.name.empty()
                                ? "tid " + std::to_string(entry.first)
                                : track.name;
        std::printf("%-32s  %8" PRIu64 "  %12" PRIu64 "  %10" PRIu64,
                    label.c_str(), track.events, track.cycles,
                    track.maxCycles);
        if (track.openSpans)
            std::printf("  (%" PRIu64 " unclosed)", track.openSpans);
        std::printf("\n");
    }
    return 0;
}

int
cmdDiff(const char *argv0, const std::vector<std::string> &args)
{
    DiffOptions options;
    // cp.json stats have no registered good-direction, so gate nothing
    // by default; --watch opts specific prefixes into the exit code.
    std::string old_path, new_path;
    for (size_t i = 0; i < args.size(); ++i) {
        if (args[i] == "--threshold") {
            if (i + 1 >= args.size()) {
                std::fprintf(stderr, "--threshold needs a value\n");
                return usage(argv0, 2);
            }
            options.thresholdPercent = std::atof(args[++i].c_str());
        } else if (args[i] == "--watch") {
            if (i + 1 >= args.size()) {
                std::fprintf(stderr, "--watch needs a value\n");
                return usage(argv0, 2);
            }
            options.watch.push_back(args[++i]);
        } else if (!args[i].empty() && args[i][0] == '-') {
            std::fprintf(stderr, "unknown flag '%s'\n", args[i].c_str());
            return usage(argv0, 2);
        } else if (old_path.empty()) {
            old_path = args[i];
        } else if (new_path.empty()) {
            new_path = args[i];
        } else {
            std::fprintf(stderr, "extra argument '%s'\n",
                         args[i].c_str());
            return usage(argv0, 2);
        }
    }
    if (old_path.empty() || new_path.empty())
        return usage(argv0, 2);

    std::string old_text, new_text;
    if (!readFile(old_path, old_text)) {
        std::fprintf(stderr, "%s: cannot read '%s'\n", argv0,
                     old_path.c_str());
        return 2;
    }
    if (!readFile(new_path, new_text)) {
        std::fprintf(stderr, "%s: cannot read '%s'\n", argv0,
                     new_path.c_str());
        return 2;
    }

    DiffReport report;
    std::string error;
    if (!diffJsonDocuments(old_text, new_text, options, report,
                           &error)) {
        std::fprintf(stderr, "parse error: %s\n", error.c_str());
        return 2;
    }

    std::printf("--- %s\n+++ %s\n", old_path.c_str(), new_path.c_str());
    printDiff(report, std::cout);
    std::printf("\n%zu improved, %zu watched regression(s), "
                "%zu watched stat(s) missing (threshold %.2f%%)\n",
                report.numImprovements, report.numRegressions,
                report.numMissing, options.thresholdPercent);
    if (report.failed()) {
        std::printf("FAIL: watched metrics regressed\n");
        return 1;
    }
    std::printf("OK\n");
    return 0;
}

/** Load and parse one collapsed-stack profile, exiting 2 on failure. */
std::vector<flame::Stack>
loadCollapsed(const char *argv0, const std::string &path)
{
    std::string text;
    if (!readFile(path, text)) {
        std::fprintf(stderr, "%s: cannot read '%s'\n", argv0,
                     path.c_str());
        std::exit(2);
    }
    std::vector<flame::Stack> stacks;
    std::string error;
    if (!flame::parseCollapsed(text, stacks, &error)) {
        std::fprintf(stderr, "%s: %s: %s\n", argv0, path.c_str(),
                     error.c_str());
        std::exit(2);
    }
    return stacks;
}

int
cmdFlame(const char *argv0, const std::vector<std::string> &args)
{
    size_t limit = 30;
    bool diff = false;
    std::string svg_path;
    std::vector<std::string> paths;
    for (size_t i = 0; i < args.size(); ++i) {
        if (args[i] == "--limit") {
            if (i + 1 >= args.size()) {
                std::fprintf(stderr, "--limit needs a value\n");
                return usage(argv0, 2);
            }
            limit = static_cast<size_t>(
                std::strtoull(args[++i].c_str(), nullptr, 10));
        } else if (args[i] == "--svg") {
            if (i + 1 >= args.size()) {
                std::fprintf(stderr, "--svg needs a value\n");
                return usage(argv0, 2);
            }
            svg_path = args[++i];
        } else if (args[i] == "--diff") {
            diff = true;
        } else if (!args[i].empty() && args[i][0] == '-') {
            std::fprintf(stderr, "unknown flag '%s'\n", args[i].c_str());
            return usage(argv0, 2);
        } else {
            paths.push_back(args[i]);
        }
    }

    if (diff) {
        if (paths.size() != 2 || !svg_path.empty()) {
            std::fprintf(stderr,
                         "flame --diff takes exactly OLD and NEW\n");
            return usage(argv0, 2);
        }
        auto before = loadCollapsed(argv0, paths[0]);
        auto after = loadCollapsed(argv0, paths[1]);
        std::printf("--- %s\n+++ %s\n", paths[0].c_str(),
                    paths[1].c_str());
        std::fputs(flame::formatFlameDiff(before, after, limit).c_str(),
                   stdout);
        return 0;
    }

    if (paths.size() != 1)
        return usage(argv0, 2);
    auto stacks = loadCollapsed(argv0, paths[0]);
    std::fputs(flame::formatFlameTable(stacks, limit).c_str(), stdout);
    if (!svg_path.empty()) {
        std::ofstream out(svg_path);
        if (!out) {
            std::fprintf(stderr, "%s: cannot write '%s'\n", argv0,
                         svg_path.c_str());
            return 2;
        }
        flame::writeFlameSvg(out, stacks, paths[0]);
        std::printf("wrote %s\n", svg_path.c_str());
    }
    return 0;
}

/** True for paths inside a batch "par/" subtree, whose times are
 *  summed worker CPU rather than wall time. */
bool
isParallelSubtree(const std::string &path)
{
    return path == "par" || path.compare(0, 4, "par/") == 0 ||
           path.find("/par/") != std::string::npos ||
           (path.size() >= 4 &&
            path.compare(path.size() - 4, 4, "/par") == 0);
}

int
cmdRegions(const char *argv0, const std::vector<std::string> &args)
{
    bool check = false;
    std::string path;
    for (const std::string &arg : args) {
        if (arg == "--check") {
            check = true;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "unknown flag '%s'\n", arg.c_str());
            return usage(argv0, 2);
        } else if (path.empty()) {
            path = arg;
        } else {
            std::fprintf(stderr, "extra argument '%s'\n", arg.c_str());
            return usage(argv0, 2);
        }
    }
    if (path.empty())
        return usage(argv0, 2);

    std::string text;
    if (!readFile(path, text)) {
        std::fprintf(stderr, "%s: cannot read '%s'\n", argv0,
                     path.c_str());
        return 2;
    }
    JsonValue doc;
    std::string error;
    if (!parseJson(text, doc, &error)) {
        std::fprintf(stderr, "%s: %s: %s\n", argv0, path.c_str(),
                     error.c_str());
        return 2;
    }
    // Accept a whole BENCH_*.json (host.regions) or a bare regions
    // object.
    const JsonValue *regions = nullptr;
    if (const JsonValue *host = doc.find("host"))
        regions = host->find("regions");
    if (!regions)
        regions = doc.find("regions");
    if (!regions && doc.isObject() && doc.find("meta"))
        regions = &doc;
    if (!regions || !regions->isObject()) {
        std::fprintf(stderr, "%s: %s: no host.regions subtree (was "
                             "the run profiled? see docs/PROFILING.md)\n",
                     argv0, path.c_str());
        return 2;
    }

    double wall = -1.0;
    double overhead = 0.0;
    if (const JsonValue *meta = regions->find("meta")) {
        if (const JsonValue *v = meta->find("wall_seconds"))
            wall = v->number;
        if (const JsonValue *v = meta->find("overhead_seconds"))
            overhead = v->number;
    }

    std::printf("%-44s %8s %12s %12s\n", "region", "count",
                "total s", "self s");
    double self_sum = 0.0;
    double root_total = 0.0;
    for (const auto &[name, value] : regions->members) {
        if (name == "meta" || !value.isObject())
            continue;
        const JsonValue *count = value.find("count");
        const JsonValue *total = value.find("total_seconds");
        const JsonValue *self = value.find("self_seconds");
        std::printf("%-44s %8.0f %12.6f %12.6f\n", name.c_str(),
                    count ? count->number : 0.0,
                    total ? total->number : 0.0,
                    self ? self->number : 0.0);
        if (isParallelSubtree(name))
            continue;
        if (self)
            self_sum += self->number;
        if (name.find('/') == std::string::npos && total)
            root_total += total->number;
    }
    if (wall >= 0.0) {
        std::printf("%-44s %8s %12.6f %12s  (overhead %.6fs)\n",
                    "(wall)", "", wall, "", overhead);
    }

    if (!check)
        return 0;

    // Telescoping invariants (docs/PROFILING.md): self-times sum back
    // to the root totals, and the roots cover the measured wall clock.
    // The "par/" subtree is excluded above — its times are worker CPU.
    bool ok = true;
    double tolerance = 0.01;
    if (root_total > 0.0) {
        double gap = std::fabs(self_sum - root_total) / root_total;
        std::printf("telescoping: sum(self)=%.6fs vs sum(roots)="
                    "%.6fs (%.2f%% gap)\n",
                    self_sum, root_total, 100.0 * gap);
        if (gap > tolerance) {
            std::printf("FAIL: self-times do not telescope to the "
                        "root totals\n");
            ok = false;
        }
    }
    if (wall > 0.0) {
        double gap = std::fabs(root_total - wall) / wall;
        std::printf("coverage: sum(roots)=%.6fs vs wall=%.6fs "
                    "(%.2f%% gap)\n", root_total, wall, 100.0 * gap);
        if (gap > tolerance) {
            std::printf("FAIL: root regions do not cover the run "
                        "wall time\n");
            ok = false;
        }
    }
    if (ok)
        std::printf("OK\n");
    return ok ? 0 : 1;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage(argv[0], 2);
    std::string command = argv[1];
    if (command == "--help" || command == "-h")
        return usage(argv[0], 0);

    std::vector<std::string> args;
    for (int i = 2; i < argc; ++i) {
        if (std::strcmp(argv[i], "--help") == 0 ||
            std::strcmp(argv[i], "-h") == 0) {
            return usage(argv[0], 0);
        }
        args.push_back(argv[i]);
    }

    if (command == "summary")
        return cmdSummary(argv[0], args);
    if (command == "path")
        return cmdPath(argv[0], args);
    if (command == "spans")
        return cmdSpans(argv[0], args);
    if (command == "diff")
        return cmdDiff(argv[0], args);
    if (command == "flame")
        return cmdFlame(argv[0], args);
    if (command == "regions")
        return cmdRegions(argv[0], args);

    std::fprintf(stderr, "unknown command '%s'\n", command.c_str());
    return usage(argv[0], 2);
}
